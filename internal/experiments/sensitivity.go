package experiments

import (
	"fmt"

	"ipex/internal/core"
	"ipex/internal/energy"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/prefetch"
	"ipex/internal/stats"
)

// SweepPoint is one configuration of a sensitivity sweep: the gmean IPEX
// speedup over the matching conventional baseline.
type SweepPoint struct {
	Label   string
	Speedup float64
}

// SweepResult is a labelled series of sweep points.
type SweepResult struct {
	Title  string
	Points []SweepPoint
	// Skipped lists apps dropped from at least one point's gmean because a
	// run exhausted the cycle budget.
	Skipped []string
}

// String renders the sweep.
func (r *SweepResult) String() string {
	var t stats.Table
	t.Header("Config", "IPEXSpeedup")
	for _, p := range r.Points {
		t.Row(p.Label, fmt.Sprintf("%.4f", p.Speedup))
	}
	return r.Title + "\n" + t.String() + skippedNote(r.Skipped)
}

// ipexGain runs the baseline and IPEX-both variants of one configuration
// over all apps and returns the gmean speedup of IPEX over the baseline,
// plus the apps dropped for exhausting the cycle budget.
func ipexGain(o Options, tr *power.Trace, mut func(*nvp.Config)) (float64, []string, error) {
	base := nvp.DefaultConfig()
	if mut != nil {
		mut(&base)
	}
	ipex := base.WithIPEX()
	baseRs, err := runPerApp(o, base, tr)
	if err != nil {
		return 0, nil, err
	}
	ipexRs, err := runPerApp(o, ipex, tr)
	if err != nil {
		return 0, nil, err
	}
	_, sets, skipped, err := filterComplete(o.Apps, baseRs, ipexRs)
	if err != nil {
		return 0, skipped, err
	}
	return stats.Geomean(speedups(sets[0], sets[1])), skipped, nil
}

// sweep evaluates ipexGain for a list of labelled mutations.
func sweep(o Options, title string, src power.Source, labels []string, muts []func(*nvp.Config)) (*SweepResult, error) {
	o = o.norm()
	tr := o.trace(src)
	res := &SweepResult{Title: title}
	for i, label := range labels {
		g, skipped, err := ipexGain(o, tr, muts[i])
		if err != nil {
			return nil, fmt.Errorf("%s [%s]: %w", title, label, err)
		}
		res.Skipped = mergeSkipped(res.Skipped, skipped)
		res.Points = append(res.Points, SweepPoint{Label: label, Speedup: g})
	}
	return res, nil
}

// Table3 reproduces Table 3: IPEX's gain with each instruction prefetcher
// (the data prefetcher stays at the default stride).
func Table3(o Options) (*SweepResult, error) {
	kinds := prefetch.InstructionKinds
	labels := make([]string, len(kinds))
	muts := make([]func(*nvp.Config), len(kinds))
	for i, k := range kinds {
		k := k
		labels[i] = string(k)
		muts[i] = func(c *nvp.Config) { c.IPrefetcher = k }
	}
	return sweep(o, "Table 3: IPEX speedup by instruction prefetcher", power.RFHome, labels, muts)
}

// Table4 reproduces Table 4: IPEX's gain with each data prefetcher (the
// instruction prefetcher stays at the default sequential).
func Table4(o Options) (*SweepResult, error) {
	kinds := prefetch.DataKinds
	labels := make([]string, len(kinds))
	muts := make([]func(*nvp.Config), len(kinds))
	for i, k := range kinds {
		k := k
		labels[i] = string(k)
		muts[i] = func(c *nvp.Config) { c.DPrefetcher = k }
	}
	return sweep(o, "Table 4: IPEX speedup by data prefetcher", power.RFHome, labels, muts)
}

// Fig16 reproduces Figure 16: the voltage-threshold-count sweep (1–3).
func Fig16(o Options) (*SweepResult, error) {
	labels := []string{"One", "Two", "Three"}
	muts := make([]func(*nvp.Config), 3)
	for i := 0; i < 3; i++ {
		k := i + 1
		muts[i] = func(c *nvp.Config) {
			c.IPEX.Thresholds = core.ThresholdsFor(k, c.Capacitor.Vbackup, c.Capacitor.Von)
		}
	}
	return sweep(o, "Figure 16: IPEX speedup vs. voltage threshold count", power.RFHome, labels, muts)
}

// Fig17 reproduces Figure 17: the prefetch-buffer-size sweep (32/64/128 B).
func Fig17(o Options) (*SweepResult, error) {
	entries := []int{2, 4, 8}
	labels := []string{"32B", "64B", "128B"}
	muts := make([]func(*nvp.Config), len(entries))
	for i, n := range entries {
		n := n
		muts[i] = func(c *nvp.Config) { c.PrefetchBufEntries = n }
	}
	return sweep(o, "Figure 17: IPEX speedup vs. prefetch buffer size", power.RFHome, labels, muts)
}

// Fig18 reproduces Figure 18: the cache-size sweep with IPEX.
func Fig18(o Options) (*SweepResult, error) {
	sizes := Fig01CacheSizes
	labels := make([]string, len(sizes))
	muts := make([]func(*nvp.Config), len(sizes))
	for i, s := range sizes {
		s := s
		labels[i] = sizeLabel(s)
		muts[i] = func(c *nvp.Config) { c.ICacheSize = s; c.DCacheSize = s }
	}
	return sweep(o, "Figure 18: IPEX speedup vs. cache size", power.RFHome, labels, muts)
}

// Fig19 reproduces Figure 19: the associativity sweep.
func Fig19(o Options) (*SweepResult, error) {
	ways := []int{1, 2, 4, 8}
	labels := []string{"1-Way", "2-Way", "4-Way", "8-Way"}
	muts := make([]func(*nvp.Config), len(ways))
	for i, w := range ways {
		w := w
		muts[i] = func(c *nvp.Config) { c.Ways = w }
	}
	return sweep(o, "Figure 19: IPEX speedup vs. cache associativity", power.RFHome, labels, muts)
}

// Fig20 reproduces Figure 20: the main-memory-size sweep.
func Fig20(o Options) (*SweepResult, error) {
	sizes := []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20}
	labels := []string{"2MB", "4MB", "8MB", "16MB", "32MB"}
	muts := make([]func(*nvp.Config), len(sizes))
	for i, s := range sizes {
		s := s
		muts[i] = func(c *nvp.Config) { c.NVM = energy.NVMFor(energy.ReRAM, s) }
	}
	return sweep(o, "Figure 20: IPEX speedup vs. main memory size", power.RFHome, labels, muts)
}

// Fig21 reproduces Figure 21: the NVM-technology sweep.
func Fig21(o Options) (*SweepResult, error) {
	techs := []energy.NVMTech{energy.ReRAM, energy.STTRAM, energy.PCM}
	labels := []string{"ReRAM", "STTRAM", "PCM"}
	muts := make([]func(*nvp.Config), len(techs))
	for i, tech := range techs {
		tech := tech
		muts[i] = func(c *nvp.Config) { c.NVM = energy.NVMFor(tech, 16<<20) }
	}
	return sweep(o, "Figure 21: IPEX speedup vs. NVM technology", power.RFHome, labels, muts)
}

// Fig22 reproduces Figure 22: the capacitor-size sweep.
func Fig22(o Options) (*SweepResult, error) {
	caps := []float64{0.47e-6, 1e-6, 4.7e-6, 10e-6, 47e-6, 100e-6, 1000e-6}
	labels := []string{"0.47", "1", "4.7", "10", "47", "100", "1000"}
	muts := make([]func(*nvp.Config), len(caps))
	for i, f := range caps {
		f := f
		muts[i] = func(c *nvp.Config) { c.Capacitor.CapacitanceFarads = f }
	}
	return sweep(o, "Figure 22: IPEX speedup vs. capacitor size (µF)", power.RFHome, labels, muts)
}

// Fig23 reproduces Figure 23: the power-trace sweep.
func Fig23(o Options) (*SweepResult, error) {
	o = o.norm()
	res := &SweepResult{Title: "Figure 23: IPEX speedup vs. power trace"}
	for _, src := range power.Sources {
		g, skipped, err := ipexGain(o, o.trace(src), nil)
		if err != nil {
			return nil, err
		}
		res.Skipped = mergeSkipped(res.Skipped, skipped)
		res.Points = append(res.Points, SweepPoint{Label: src.String(), Speedup: g})
	}
	return res, nil
}

// Fig24 reproduces Figure 24: the threshold-adaptation step-size sweep.
func Fig24(o Options) (*SweepResult, error) {
	steps := []float64{0.05, 0.10, 0.15}
	labels := []string{"0.05V", "0.1V", "0.15V"}
	muts := make([]func(*nvp.Config), len(steps))
	for i, s := range steps {
		s := s
		muts[i] = func(c *nvp.Config) { c.IPEX.StepV = s }
	}
	return sweep(o, "Figure 24: IPEX speedup vs. voltage step size", power.RFHome, labels, muts)
}

// Fig25 reproduces Figure 25: the throttle-rate-trigger sweep.
func Fig25(o Options) (*SweepResult, error) {
	rates := []float64{0.01, 0.05, 0.10, 0.20}
	labels := []string{"1%", "5%", "10%", "20%"}
	muts := make([]func(*nvp.Config), len(rates))
	for i, r := range rates {
		r := r
		muts[i] = func(c *nvp.Config) { c.IPEX.ThrottleRateTrigger = r }
	}
	return sweep(o, "Figure 25: IPEX speedup vs. throttle-rate trigger", power.RFHome, labels, muts)
}

// AblationDegreePolicy compares the paper's halve/double degree adjustment
// against a linear ±1 policy (DESIGN.md ablation).
func AblationDegreePolicy(o Options) (*SweepResult, error) {
	return sweep(o, "Ablation: degree adjustment policy", power.RFHome,
		[]string{"halve/double", "linear±1"},
		[]func(*nvp.Config){
			nil,
			func(c *nvp.Config) { c.IPEX.LinearAdjust = true },
		})
}

// AblationAdaptive compares adaptive threshold tuning against fixed
// thresholds.
func AblationAdaptive(o Options) (*SweepResult, error) {
	return sweep(o, "Ablation: adaptive vs. fixed thresholds", power.RFHome,
		[]string{"adaptive", "fixed"},
		[]func(*nvp.Config){
			nil,
			func(c *nvp.Config) { c.IPEX.Adaptive = false },
		})
}

// AblationReissue evaluates the §5.1 future-work extension: reissuing
// throttled prefetches when IPEX returns to high-performance mode.
func AblationReissue(o Options) (*SweepResult, error) {
	return sweep(o, "Extension: §5.1 reissue-on-exit (IPEX gain with/without)", power.RFHome,
		[]string{"ipex", "ipex+reissue"},
		[]func(*nvp.Config){
			nil,
			func(c *nvp.Config) { c.ReissueOnExit = true },
		})
}

// AblationAddressGen evaluates the §5.2 extension on a table-based
// prefetcher pair (Markov instruction + GHB data): gating the prefetchers'
// address generation when the degree is throttled to zero.
func AblationAddressGen(o Options) (*SweepResult, error) {
	tableBased := func(c *nvp.Config) {
		c.IPrefetcher = prefetch.KindMarkov
		c.DPrefetcher = prefetch.KindGHB
	}
	return sweep(o, "Extension: §5.2 address-generation gating (Markov+GHB)", power.RFHome,
		[]string{"gated", "ungated"},
		[]func(*nvp.Config){
			func(c *nvp.Config) { tableBased(c); c.GateAddressGen = true },
			tableBased,
		})
}

// AblationPrefetchDest compares the prefetch-to-cache organization (the
// paper's Figs. 5/6 story, this repo's default) against the pure
// prefetch-buffer organization (§6's pollution-free variant), reporting
// each one's IPEX gain.
func AblationPrefetchDest(o Options) (*SweepResult, error) {
	return sweep(o, "Ablation: prefetch destination (IPEX gain per organization)", power.RFHome,
		[]string{"to-cache", "buffer-only"},
		[]func(*nvp.Config){
			nil,
			func(c *nvp.Config) { c.PrefetchToCache = false },
		})
}

// AblationDupSuppress compares the §5.1 duplicate-request suppression
// on/off, reporting the suppression's own gain for the conventional
// prefetcher (not an IPEX delta).
func AblationDupSuppress(o Options) (*SweepResult, error) {
	o = o.norm()
	tr := o.trace(power.RFHome)
	with := nvp.DefaultConfig()
	without := with
	without.DupSuppress = false

	withRs, err := runPerApp(o, with, tr)
	if err != nil {
		return nil, err
	}
	withoutRs, err := runPerApp(o, without, tr)
	if err != nil {
		return nil, err
	}
	_, sets, skipped, err := filterComplete(o.Apps, withRs, withoutRs)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Title:   "Ablation: §5.1 duplicate-request suppression (speedup of on vs. off)",
		Skipped: skipped,
	}
	res.Points = append(res.Points, SweepPoint{
		Label:   "suppression-gain",
		Speedup: stats.Geomean(speedups(sets[1], sets[0])),
	})
	return res, nil
}
