package experiments

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipex/internal/harness"
	"ipex/internal/nvp"
)

// chaosOpts is a tiny, fast sweep: 2 apps × 4 configurations = 8 cells.
func chaosOpts() Options {
	return Options{Scale: 0.02, Apps: []string{"fft", "gsme"}, Parallelism: 2}
}

func asJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestInterruptResumeBitIdentical is the tentpole round trip: a sweep
// interrupted mid-flight (deterministically, via the StopAfter drain — the
// same code path a SIGINT takes) and then resumed from its journal must
// produce a byte-identical result to an uninterrupted sweep.
func TestInterruptResumeBitIdentical(t *testing.T) {
	golden, err := Fig11(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := harness.CreateJournal(path, "chaos-sweep")
	if err != nil {
		t.Fatal(err)
	}
	o := chaosOpts()
	o.Sup = &harness.Supervisor{Journal: j, StopAfter: 3}
	if _, err := Fig11(o); !errors.Is(err, harness.ErrInterrupted) {
		t.Fatalf("interrupted sweep returned %v, want ErrInterrupted", err)
	}
	j.Close()
	if cs := o.Sup.Counters.Snapshot(); cs.Executed != 3 {
		t.Fatalf("executed %d cells before the drain, want 3", cs.Executed)
	}

	j2, replay, warns, err := harness.ResumeJournal(path, "chaos-sweep")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(warns) != 0 {
		t.Fatalf("clean journal produced warnings: %v", warns)
	}
	o2 := chaosOpts()
	o2.Sup = &harness.Supervisor{Journal: j2, Replay: replay}
	resumed, err := Fig11(o2)
	if err != nil {
		t.Fatal(err)
	}
	if cs := o2.Sup.Counters.Snapshot(); cs.Replayed != 3 {
		t.Fatalf("resume replayed %d cells, want 3", cs.Replayed)
	}
	if g, r := asJSON(t, golden), asJSON(t, resumed); g != r {
		t.Fatalf("resumed result differs from uninterrupted golden:\n got %s\nwant %s", r, g)
	}
	if g, r := golden.String(), resumed.String(); g != r {
		t.Fatalf("rendered tables differ:\n got %s\nwant %s", r, g)
	}
}

// TestResumeWithCorruptedLine drops a corrupted line into the journal: the
// cell behind it must be re-simulated, with a warning, and the final result
// must still match the golden.
func TestResumeWithCorruptedLine(t *testing.T) {
	golden, err := Fig11(chaosOpts())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := harness.CreateJournal(path, "chaos-sweep")
	if err != nil {
		t.Fatal(err)
	}
	o := chaosOpts()
	o.Sup = &harness.Supervisor{Journal: j, StopAfter: 4}
	if _, err := Fig11(o); !errors.Is(err, harness.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	j.Close()

	// Corrupt the final journaled cell: truncate the file mid-line, the
	// shape a crash during an append leaves behind.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, replay, warns, err := harness.ResumeJournal(path, "chaos-sweep")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(warns) != 1 || !strings.Contains(warns[0], "re-run") {
		t.Fatalf("warnings = %v, want one truncated-line warning", warns)
	}
	o2 := chaosOpts()
	o2.Sup = &harness.Supervisor{Journal: j2, Replay: replay}
	resumed, err := Fig11(o2)
	if err != nil {
		t.Fatal(err)
	}
	cs := o2.Sup.Counters.Snapshot()
	if cs.Replayed != 3 {
		t.Fatalf("replayed %d cells, want 3 (the corrupted 4th must re-run)", cs.Replayed)
	}
	if g, r := asJSON(t, golden), asJSON(t, resumed); g != r {
		t.Fatalf("result with re-run cell differs from golden:\n got %s\nwant %s", r, g)
	}
}

// TestResumeRejectsChangedSweep pins the stale-journal guard at the sweep
// level: the caller (cmd/experiments) hashes its sweep definition into the
// header, and a resume under a different hash fails up front.
func TestResumeRejectsChangedSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	key1 := harness.Key(SweepIdentity{Experiments: []string{"fig11"}, Scale: 0.02, Apps: []string{"fft"}, TraceSeed: 1})
	j, err := harness.CreateJournal(path, key1)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	key2 := harness.Key(SweepIdentity{Experiments: []string{"fig11"}, Scale: 0.04, Apps: []string{"fft"}, TraceSeed: 1})
	if key1 == key2 {
		t.Fatal("sweep hash ignores scale")
	}
	if _, _, _, err := harness.ResumeJournal(path, key2); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("stale journal accepted: %v", err)
	}
}

// TestCellKeysSeparateConfigurations pins the per-cell identity: same app
// under different configurations, scales, or seeds must hash differently,
// and identical cells identically.
func TestCellKeysSeparateConfigurations(t *testing.T) {
	o := chaosOpts().norm()
	tr := o.trace(0)
	j1 := job{app: "fft", tr: tr}
	j1.cfg = o.effective(nvp.DefaultConfig())
	k1 := cellKey(o, j1, j1.cfg)
	if k2 := cellKey(o, j1, j1.cfg); k2 != k1 {
		t.Fatal("identical cell hashed differently")
	}
	cfg2 := nvp.DefaultConfig()
	cfg2.IPEXData = true
	if k := cellKey(o, job{app: "fft", tr: tr, cfg: cfg2}, o.effective(cfg2)); k == k1 {
		t.Fatal("config change did not change the cell key")
	}
	o2 := o
	o2.Scale = o.Scale * 2
	if k := cellKey(o2, j1, j1.cfg); k == k1 {
		t.Fatal("scale change did not change the cell key")
	}
	o3 := o
	o3.TraceSeed = 99
	if k := cellKey(o3, j1, j1.cfg); k == k1 {
		t.Fatal("seed change did not change the cell key")
	}
}

// TestPanicIsolationSkipsOnlyThatApp injects a panic into every cell of one
// app (via the in-package test hook): the sweep must complete, report the
// poisoned app as skipped, and journal the panic with its stack.
func TestPanicIsolationSkipsOnlyThatApp(t *testing.T) {
	testCellHook = func(app string) {
		if app == "gsme" {
			panic("injected test panic in " + app)
		}
	}
	defer func() { testCellHook = nil }()

	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := harness.CreateJournal(path, "panic-sweep")
	if err != nil {
		t.Fatal(err)
	}
	o := chaosOpts()
	o.Sup = &harness.Supervisor{Journal: j}
	res, err := Fig11(o)
	if err != nil {
		t.Fatalf("sweep with one poisoned app failed entirely: %v", err)
	}
	j.Close()
	if len(res.Skipped) != 1 || res.Skipped[0] != "gsme" {
		t.Fatalf("Skipped = %v, want exactly [gsme]", res.Skipped)
	}
	if s := res.String(); !strings.Contains(s, "skipped") || !strings.Contains(s, "gsme") {
		t.Fatalf("rendered result lacks the skipped note:\n%s", s)
	}
	for _, row := range res.Rows {
		if row.App == "gsme" {
			t.Fatal("poisoned app survived into the rows")
		}
	}
	cs := o.Sup.Counters.Snapshot()
	if cs.Panics != 4 {
		t.Fatalf("Panics = %d, want 4 (one per configuration of the poisoned app)", cs.Panics)
	}

	_, entries, _, err := harness.ResumeJournal(path, "panic-sweep")
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for _, e := range entries {
		if e.Kind != harness.KindFail {
			continue
		}
		fails++
		if e.App != "gsme" {
			t.Errorf("journaled failure for healthy app %s", e.App)
		}
		if !strings.Contains(e.Error, "injected test panic") {
			t.Errorf("journaled error %q lacks the panic value", e.Error)
		}
		if !strings.Contains(e.Stack, "goroutine") {
			t.Errorf("journaled entry lacks a goroutine stack")
		}
	}
	if fails != 4 {
		t.Errorf("journal holds %d failure entries, want 4", fails)
	}
}

// TestPanicRemovesHalfWrittenCellTrace covers the celltrace error path: a
// cell that panics after its trace file was created must not leave the
// half-written file behind.
func TestPanicRemovesHalfWrittenCellTrace(t *testing.T) {
	testCellHook = func(app string) {
		if app == "gsme" {
			panic("poisoned after trace open")
		}
	}
	defer func() { testCellHook = nil }()

	dir := t.TempDir()
	o := chaosOpts()
	o.Cells = NewCellTracing(dir)
	o.Cells.SetLabel("chaos")
	res, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skipped) != 1 {
		t.Fatalf("Skipped = %v", res.Skipped)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.Contains(f.Name(), "gsme") {
			t.Errorf("half-written cell trace %s left behind by a panic", f.Name())
		}
	}
	// The healthy app's traces all exist: 4 configurations of fft.
	if n := len(files); n != 4 {
		names := make([]string, 0, n)
		for _, f := range files {
			names = append(names, f.Name())
		}
		t.Fatalf("cell trace files = %v, want the 4 fft cells", names)
	}
	if got := o.Cells.Files(); got != 4 {
		t.Fatalf("Files() = %d, want 4", got)
	}
}
