package experiments

import (
	"strings"
	"testing"
)

// tiny returns options that keep test sweeps fast but still exercise the
// full pipeline.
func tiny() Options {
	return Options{Scale: 0.03, Apps: []string{"fft", "gsme", "pegwitd"}}
}

func TestFig01(t *testing.T) {
	r, err := Fig01(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Fig01CacheSizes) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The 2kB row is the normalization point.
	for _, row := range r.Rows {
		if row.CacheSize == 2048 && (row.Speedup < 0.999 || row.Speedup > 1.001) {
			t.Errorf("2kB speedup = %v, want 1.0", row.Speedup)
		}
		if row.LeakPct <= 0 || row.LeakPct >= 1 {
			t.Errorf("leak%% = %v", row.LeakPct)
		}
	}
	// Figure 1's red curve: leakage share grows monotonically with size.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].LeakPct <= r.Rows[i-1].LeakPct {
			t.Errorf("leakage share not increasing at %s", sizeLabel(r.Rows[i].CacheSize))
		}
	}
	if !strings.Contains(r.String(), "Figure 1") {
		t.Error("renderer missing title")
	}
}

func TestFig02(t *testing.T) {
	r, err := Fig02(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.IStall < 0 || row.IStall > 1 || row.DStall < 0 || row.DStall > 1 {
			t.Errorf("%s: stall out of range: %+v", row.App, row)
		}
	}
	// pegwitd is the D-stall-dominated app.
	for _, row := range r.Rows {
		if row.App == "pegwitd" && row.DStall < 0.3 {
			t.Errorf("pegwitd D-stall = %v, expected dominant", row.DStall)
		}
	}
}

func TestFig04(t *testing.T) {
	r, err := Fig04(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range r.Points {
		if p.MinP < 0 || p.MinP > 1 {
			t.Errorf("P out of range: %+v", p)
		}
	}
	if r.DefaultSystemMinP < 0.30 || r.DefaultSystemMinP > 0.50 {
		t.Errorf("default-system min P = %v", r.DefaultSystemMinP)
	}
}

func TestHeadlineShares(t *testing.T) {
	h, err := Headline(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Fig10.Rows) != 3 || len(h.Fig12.Rows) != 3 || len(h.Fig15.Rows) != 3 {
		t.Fatal("row counts wrong")
	}
	// IPEX must reduce prefetch operations on average (Fig. 12's claim).
	if h.Fig12.Mean <= 0 {
		t.Errorf("mean prefetch reduction = %v, want positive", h.Fig12.Mean)
	}
	// Normalized breakdowns: baseline totals are exactly 1.
	for _, row := range h.Fig14.Rows {
		if row.Base.Total() < 0.999 || row.Base.Total() > 1.001 {
			t.Errorf("%s: base normalized total = %v", row.App, row.Base.Total())
		}
	}
	// Table 2 metrics are probabilities.
	for _, v := range []float64{h.Table2.BaseAccI, h.Table2.BaseAccD, h.Table2.IPEXAccI, h.Table2.IPEXAccD,
		h.Table2.BaseCovI, h.Table2.BaseCovD, h.Table2.IPEXCovI, h.Table2.IPEXCovD} {
		if v < 0 || v > 1 {
			t.Errorf("Table 2 metric out of range: %v", v)
		}
	}
	// Renderers produce the paper's labels.
	if !strings.Contains(h.Fig10.String(), "gmean") || !strings.Contains(h.Table2.String(), "NVSRAMCache") {
		t.Error("renderers missing expected content")
	}
}

func TestFig11(t *testing.T) {
	r, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatal("row count wrong")
	}
}

func TestSweepsRun(t *testing.T) {
	o := Options{Scale: 0.02, Apps: []string{"fft", "gsme"}}
	type fn func(Options) (*SweepResult, error)
	cases := map[string]fn{
		"Table3": Table3, "Table4": Table4,
		"Fig16": Fig16, "Fig17": Fig17, "Fig18": Fig18, "Fig19": Fig19,
		"Fig20": Fig20, "Fig21": Fig21, "Fig22": Fig22,
		"Fig24": Fig24, "Fig25": Fig25,
		"AblationDegreePolicy": AblationDegreePolicy,
		"AblationAdaptive":     AblationAdaptive,
		"AblationDupSuppress":  AblationDupSuppress,
		"AblationPrefetchDest": AblationPrefetchDest,
		"AblationReissue":      AblationReissue,
		"AblationAddressGen":   AblationAddressGen,
	}
	for name, f := range cases {
		r, err := f(o)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(r.Points) == 0 {
			t.Errorf("%s: no points", name)
			continue
		}
		for _, p := range r.Points {
			if p.Speedup <= 0 {
				t.Errorf("%s[%s]: speedup %v", name, p.Label, p.Speedup)
			}
		}
		if !strings.Contains(r.String(), p0Label(r)) {
			t.Errorf("%s: renderer missing first label", name)
		}
	}
}

func p0Label(r *SweepResult) string { return r.Points[0].Label }

func TestFig23AllTraces(t *testing.T) {
	r, err := Fig23(Options{Scale: 0.02, Apps: []string{"fft", "qsort"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want 4 traces", len(r.Points))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.norm()
	if o.Scale != 1 || len(o.Apps) != 20 || o.TraceSeed != 1 || o.Parallelism <= 0 {
		t.Errorf("defaults wrong: %+v", o)
	}
}
