// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the NVP simulator. Each FigNN/TableN function sweeps
// the same workloads, power traces, and parameters as the paper and returns
// a typed result that renders the same rows or series the paper reports.
//
// The experiment index lives in DESIGN.md; measured-vs-paper values in
// EXPERIMENTS.md. cmd/experiments drives everything from the command line.
package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"ipex/internal/harness"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/trace"
	"ipex/internal/workload"
)

// Options controls the sweep size shared by every experiment.
type Options struct {
	// Scale multiplies each workload's instruction count; 1.0 reproduces
	// the full-length runs, tests use small values. <= 0 means 1.0.
	Scale float64
	// Apps restricts the workload list; nil means all 20.
	Apps []string
	// TraceSeed seeds the synthetic power traces (default 1). Every
	// configuration within one experiment replays the identical trace, so
	// the seed only selects which input-energy recording is used.
	TraceSeed uint64
	// Parallelism bounds concurrent simulations (default NumCPU).
	Parallelism int
	// Workloads supplies memoized access streams; nil means the shared
	// process-wide store. Every configuration of a sweep replays the same
	// generated-once stream instead of regenerating it per job.
	Workloads *workload.Store
	// Tracer, when non-nil, streams every run's event log. One tracer
	// carries one run's cycle clock, so tracing forces Parallelism to 1:
	// runs are serialized rather than interleaving their clocks. For a
	// traced sweep that keeps its parallelism, use Cells instead.
	Tracer *trace.Tracer
	// Cells, when non-nil, gives every sweep cell its own JSONL trace file
	// with a deterministic name (see CellTracing). Per-cell tracers have
	// independent clocks, so this composes with Parallelism; it overrides
	// Tracer for the simulations themselves.
	Cells *CellTracing
	// Progress, when non-nil, is bumped as cells enqueue and complete, for
	// live sweep telemetry (cmd/experiments -listen).
	Progress *Progress
	// Metrics, when non-nil, accumulates named counters across every run
	// of the sweep (the dump then decomposes the whole sweep).
	Metrics *trace.Registry
	// Paranoid runs every simulation with the runtime invariant checker
	// (nvp.Config.Paranoid) and fails a run whose report is not clean —
	// structured diagnostics instead of a silently corrupted sweep. The
	// failure is marked transient, so a supervisor with retries re-runs the
	// flagged cell before giving up.
	Paranoid bool
	// GenericLoop forces every cell through the generic interpreter loop
	// (nvp.Config.DisableFastPaths): an A/B switch for validating the
	// specialized fast paths, which are bit-identical by contract. It does
	// not enter the cell's journal identity, so resumed sweeps replay
	// regardless of which loop produced the journal.
	GenericLoop bool
	// Ctx, when non-nil, is the graceful-drain context: once cancelled
	// (SIGINT/SIGTERM in cmd/experiments) no further cells are dispatched,
	// in-flight cells finish and are journaled, and the sweep reports
	// harness.ErrInterrupted. The context is deliberately NOT passed to the
	// simulations themselves — an interrupt never discards work in flight.
	Ctx context.Context
	// Sup, when non-nil, supervises every cell: durable journaling, replay
	// on resume, bounded retries with deterministic backoff, a wall-clock
	// backstop, and panic isolation. One Supervisor is shared across every
	// experiment of a command invocation. Nil runs cells bare (but still
	// panic-isolated by the zero supervisor).
	//
	// Cell identities hash the effective nvp.Config; caller-installed
	// prefetcher factories contribute their declared
	// IPrefetcherID/DPrefetcherID names. A factory installed without an
	// ID has no stable identity, so its cells are never journaled or
	// replayed — they simulate every time.
	Sup *harness.Supervisor
	// CellBudget, when > 0, clamps every cell's nvp.Config.MaxCycles to at
	// most this many simulated cycles — the deterministic per-cell
	// deadline. A cell that exceeds it truncates (Completed=false) inside
	// simulated time, identically on every machine; the supervisor's
	// wall-clock watchdog is only the backstop behind it.
	CellBudget uint64
	// RemoteEncode, when non-nil, derives each cell's declarative /v1/run
	// body (or nil when the cell is not expressible remotely); the result
	// rides on harness.Cell.RemoteReq for Sup.Remote to execute on an ipexd
	// fleet. Injected as a function (remote.EncodeCell) rather than imported
	// so experiments does not depend on the remote package.
	RemoteEncode RemoteEncoder
}

// RemoteEncoder derives the declarative remote-execution request for one
// sweep cell, or nil when the cell must run locally. The signature matches
// remote.EncodeCell.
type RemoteEncoder func(app string, scale float64, tr *power.Trace, traceSeed uint64, cfg nvp.Config, key string) []byte

func (o Options) norm() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Apps) == 0 {
		o.Apps = workload.Names()
	}
	if o.TraceSeed == 0 {
		o.TraceSeed = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.Tracer != nil {
		o.Parallelism = 1
	}
	if o.Workloads == nil {
		o.Workloads = workload.Shared()
	}
	return o
}

// traceMemo caches generated power traces by (source, seed). Generation is
// deterministic and traces are read-only once built, so every experiment of
// a sweep shares one instance instead of re-synthesizing ~50k samples each.
var traceMemo sync.Map

type traceKey struct {
	src  power.Source
	seed uint64
}

// trace builds (or replays) the shared power trace for a source.
func (o Options) trace(src power.Source) *power.Trace {
	key := traceKey{src: src, seed: o.TraceSeed}
	if v, ok := traceMemo.Load(key); ok {
		return v.(*power.Trace)
	}
	v, _ := traceMemo.LoadOrStore(key, power.Generate(src, power.DefaultTraceSamples, o.TraceSeed))
	return v.(*power.Trace)
}

// job is one simulation request.
type job struct {
	app string
	cfg nvp.Config
	tr  *power.Trace
}

// effective derives the result-affecting config of one job: the sweep-level
// paranoid flag and the deterministic per-cell cycle deadline applied, but
// no observer attachments (those are added per run and excluded from the
// cell's journal identity).
func (o Options) effective(cfg nvp.Config) nvp.Config {
	if o.Paranoid {
		cfg.Paranoid = true
	}
	if o.GenericLoop {
		cfg.DisableFastPaths = true
	}
	if o.CellBudget > 0 && (cfg.MaxCycles == 0 || cfg.MaxCycles > o.CellBudget) {
		cfg.MaxCycles = o.CellBudget
	}
	return cfg
}

// runAll executes jobs on the crash-safe harness pool, preserving order.
// Every job becomes a supervised cell: journaled when Options.Sup carries a
// journal, replayed instead of re-simulated on resume, retried on transient
// failures, and panic-isolated (a panicking cell soft-fails into the
// skipped-app path instead of taking the sweep down). Cancellation of
// Options.Ctx drains gracefully — in-flight cells complete — and surfaces
// as a harness.ErrInterrupted-wrapped error.
func runAll(o Options, jobs []job) ([]nvp.Result, error) {
	store := o.Workloads
	if store == nil {
		store = workload.Shared()
	}
	o.Progress.addTotal(uint64(len(jobs)))
	// Per-cell trace paths are reserved here, in enqueue order, so the file
	// names are deterministic however the workers get scheduled. Creation
	// is deferred to the cell body: a replayed cell simulates nothing and
	// therefore writes no trace file.
	var cellPaths []string
	if o.Cells != nil {
		cellPaths = make([]string, len(jobs))
		for i, j := range jobs {
			cellPaths[i] = o.Cells.reserve(j.app)
		}
	}
	cells := make([]harness.Cell, len(jobs))
	for i := range jobs {
		j := jobs[i]
		cfg := o.effective(j.cfg)
		var path string
		if cellPaths != nil {
			path = cellPaths[i]
		}
		cells[i] = harness.Cell{
			Key:   cellKey(o, j, cfg),
			Label: j.app,
			Run:   o.cellRun(store, j, cfg, path),
		}
		if o.RemoteEncode != nil && cells[i].Key != "" {
			cells[i].RemoteReq = o.RemoteEncode(j.app, o.Scale, j.tr, o.TraceSeed, cfg, cells[i].Key)
		}
	}
	pool := &harness.Pool{
		Workers: o.Parallelism,
		Ctx:     o.Ctx,
		Sup:     o.Sup,
		OnDone: func(_ int, res nvp.Result, _ error, _ bool) {
			o.Progress.jobDone(res.Insts)
		},
	}
	results, errs, interrupted := pool.Run(cells)
	if interrupted != nil {
		return nil, interrupted
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// testCellHook, when non-nil, runs inside every cell body just before the
// simulation (after the cell's trace file, if any, is created). It exists so
// in-package tests can inject a per-cell panic and cover the isolation path
// end to end; production code never sets it.
var testCellHook func(app string)

// cellRun builds the supervised body of one sweep cell. The context it
// receives is the supervisor's wall-clock backstop (nil when unarmed) —
// never the sweep's drain context — threaded into nvp.RunContext so a
// wedged cell stops at its next power-cycle boundary. The cell simulates
// straight off the store's shared immutable trace arena through the
// worker's nvp.Arena, so a steady-state cell neither copies the workload
// nor allocates simulation state.
func (o Options) cellRun(store *workload.Store, j job, cfg nvp.Config, cellPath string) func(context.Context, *nvp.Arena) (nvp.Result, error) {
	return func(ctx context.Context, a *nvp.Arena) (res nvp.Result, err error) {
		st, err := store.Stream(j.app, o.Scale)
		if err != nil {
			return nvp.Result{}, err
		}
		if a == nil {
			a = nvp.NewArena()
		}
		cfg.Tracer = o.Tracer
		cfg.Metrics = o.Metrics
		if cellPath != "" {
			f, ferr := os.Create(cellPath)
			if ferr != nil {
				return nvp.Result{}, ferr
			}
			tr := trace.NewJSONL(f)
			cfg.Tracer = tr
			// The trace file must never outlive a failed cell half-written:
			// on success it is flushed, closed, and counted; on error it is
			// closed and removed; on panic it is removed and the panic is
			// re-raised for the supervisor to isolate and journal.
			defer func() {
				if p := recover(); p != nil {
					f.Close()
					os.Remove(cellPath)
					panic(p)
				}
				if err == nil {
					err = tr.Flush()
				}
				if cerr := f.Close(); cerr != nil && err == nil {
					err = fmt.Errorf("experiments: closing %s: %w", cellPath, cerr)
				}
				if err != nil {
					os.Remove(cellPath)
					return
				}
				o.Cells.wrote()
			}()
		}
		if testCellHook != nil {
			testCellHook(j.app)
		}
		res, err = a.RunStreamContext(ctx, st, j.tr, cfg)
		if err == nil && cfg.Paranoid && !res.Invariants.Clean() {
			// Flagged runs are worth one more try (bounded by the
			// supervisor's MaxRetries) before the sweep aborts.
			err = harness.Transient(fmt.Errorf("experiments: %s: %s", j.app, res.Invariants.Summary()))
		}
		return res, err
	}
}

// runPerApp runs one configuration for every app and returns results in app
// order.
func runPerApp(o Options, cfg nvp.Config, tr *power.Trace) ([]nvp.Result, error) {
	jobs := make([]job, len(o.Apps))
	for i, app := range o.Apps {
		jobs[i] = job{app: app, cfg: cfg, tr: tr}
	}
	return runAll(o, jobs)
}

// speedups returns base[i].Cycles / variant[i].Cycles per app.
func speedups(base, variant []nvp.Result) []float64 {
	out := make([]float64, len(base))
	for i := range base {
		out[i] = float64(base[i].Cycles) / float64(variant[i].Cycles)
	}
	return out
}

// filterComplete drops every app whose run hit the cycle budget in ANY of
// the aligned result sets: timing comparisons of truncated runs are
// meaningless, but one starved workload must not abort a whole sweep. It
// returns the surviving apps, the correspondingly filtered sets, and the
// names that were dropped (for the experiment's failure summary). Only a
// sweep with NO surviving app is an error.
func filterComplete(apps []string, sets ...[]nvp.Result) (kept []string, filtered [][]nvp.Result, skipped []string, err error) {
	bad := make([]bool, len(apps))
	for _, rs := range sets {
		for i := range rs {
			if !rs[i].Completed {
				bad[i] = true
			}
		}
	}
	kept = make([]string, 0, len(apps))
	filtered = make([][]nvp.Result, len(sets))
	for i, app := range apps {
		if bad[i] {
			skipped = append(skipped, app)
			continue
		}
		kept = append(kept, app)
		for s := range sets {
			filtered[s] = append(filtered[s], sets[s][i])
		}
	}
	if len(kept) == 0 {
		return nil, nil, skipped, fmt.Errorf("experiments: no workload completed within the cycle budget (weak trace or tiny MaxCycles); skipped: %s",
			strings.Join(skipped, ", "))
	}
	return kept, filtered, skipped, nil
}

// skippedNote renders the per-experiment failure summary appended to its
// String() output; empty when every app completed.
func skippedNote(skipped []string) string {
	if len(skipped) == 0 {
		return ""
	}
	return fmt.Sprintf("\n(skipped %d app(s), cycle budget exhausted: %s)",
		len(skipped), strings.Join(skipped, ", "))
}

// mergeSkipped accumulates unique skipped-app names across sweep points,
// preserving first-seen order.
func mergeSkipped(acc, more []string) []string {
	for _, app := range more {
		seen := false
		for _, a := range acc {
			if a == app {
				seen = true
				break
			}
		}
		if !seen {
			acc = append(acc, app)
		}
	}
	return acc
}
