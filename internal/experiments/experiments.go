// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the NVP simulator. Each FigNN/TableN function sweeps
// the same workloads, power traces, and parameters as the paper and returns
// a typed result that renders the same rows or series the paper reports.
//
// The experiment index lives in DESIGN.md; measured-vs-paper values in
// EXPERIMENTS.md. cmd/experiments drives everything from the command line.
package experiments

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/trace"
	"ipex/internal/workload"
)

// Options controls the sweep size shared by every experiment.
type Options struct {
	// Scale multiplies each workload's instruction count; 1.0 reproduces
	// the full-length runs, tests use small values. <= 0 means 1.0.
	Scale float64
	// Apps restricts the workload list; nil means all 20.
	Apps []string
	// TraceSeed seeds the synthetic power traces (default 1). Every
	// configuration within one experiment replays the identical trace, so
	// the seed only selects which input-energy recording is used.
	TraceSeed uint64
	// Parallelism bounds concurrent simulations (default NumCPU).
	Parallelism int
	// Workloads supplies memoized access streams; nil means the shared
	// process-wide store. Every configuration of a sweep replays the same
	// generated-once stream instead of regenerating it per job.
	Workloads *workload.Store
	// Tracer, when non-nil, streams every run's event log. One tracer
	// carries one run's cycle clock, so tracing forces Parallelism to 1:
	// runs are serialized rather than interleaving their clocks. For a
	// traced sweep that keeps its parallelism, use Cells instead.
	Tracer *trace.Tracer
	// Cells, when non-nil, gives every sweep cell its own JSONL trace file
	// with a deterministic name (see CellTracing). Per-cell tracers have
	// independent clocks, so this composes with Parallelism; it overrides
	// Tracer for the simulations themselves.
	Cells *CellTracing
	// Progress, when non-nil, is bumped as cells enqueue and complete, for
	// live sweep telemetry (cmd/experiments -listen).
	Progress *Progress
	// Metrics, when non-nil, accumulates named counters across every run
	// of the sweep (the dump then decomposes the whole sweep).
	Metrics *trace.Registry
	// Paranoid runs every simulation with the runtime invariant checker
	// (nvp.Config.Paranoid) and fails a run whose report is not clean —
	// structured diagnostics instead of a silently corrupted sweep.
	Paranoid bool
}

func (o Options) norm() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Apps) == 0 {
		o.Apps = workload.Names()
	}
	if o.TraceSeed == 0 {
		o.TraceSeed = 1
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.Tracer != nil {
		o.Parallelism = 1
	}
	if o.Workloads == nil {
		o.Workloads = workload.Shared()
	}
	return o
}

// traceMemo caches generated power traces by (source, seed). Generation is
// deterministic and traces are read-only once built, so every experiment of
// a sweep shares one instance instead of re-synthesizing ~50k samples each.
var traceMemo sync.Map

type traceKey struct {
	src  power.Source
	seed uint64
}

// trace builds (or replays) the shared power trace for a source.
func (o Options) trace(src power.Source) *power.Trace {
	key := traceKey{src: src, seed: o.TraceSeed}
	if v, ok := traceMemo.Load(key); ok {
		return v.(*power.Trace)
	}
	v, _ := traceMemo.LoadOrStore(key, power.Generate(src, power.DefaultTraceSamples, o.TraceSeed))
	return v.(*power.Trace)
}

// job is one simulation request.
type job struct {
	app string
	cfg nvp.Config
	tr  *power.Trace
}

// runAll executes jobs on a bounded worker pool, preserving order. A fixed
// pool (rather than one goroutine per job gated by a semaphore) keeps the
// footprint at Parallelism goroutines regardless of sweep size — a headline
// run enqueues thousands of jobs, and each blocked goroutine used to cost a
// stack before its semaphore slot even opened.
func runAll(o Options, jobs []job) ([]nvp.Result, error) {
	store := o.Workloads
	if store == nil {
		store = workload.Shared()
	}
	results := make([]nvp.Result, len(jobs))
	errs := make([]error, len(jobs))
	o.Progress.addTotal(uint64(len(jobs)))
	// Per-cell trace paths are reserved here, in enqueue order, so the file
	// names are deterministic however the workers get scheduled.
	var cellPaths []string
	if o.Cells != nil {
		cellPaths = make([]string, len(jobs))
		for i, j := range jobs {
			cellPaths[i] = o.Cells.reserve(j.app)
		}
	}
	workers := o.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				wl, err := store.Get(j.app, o.Scale)
				if err != nil {
					errs[i] = err
					o.Progress.jobDone(0)
					continue
				}
				cfg := j.cfg
				cfg.Tracer = o.Tracer
				cfg.Metrics = o.Metrics
				if o.Paranoid {
					cfg.Paranoid = true
				}
				var cellFile *os.File
				if cellPaths != nil {
					f, err := os.Create(cellPaths[i])
					if err != nil {
						errs[i] = err
						o.Progress.jobDone(0)
						continue
					}
					cellFile = f
					cfg.Tracer = trace.NewJSONL(f)
				}
				results[i], errs[i] = nvp.Run(wl, j.tr, cfg)
				if cellFile != nil {
					if err := cfg.Tracer.Flush(); err != nil && errs[i] == nil {
						errs[i] = err
					}
					if err := cellFile.Close(); err != nil && errs[i] == nil {
						errs[i] = fmt.Errorf("experiments: closing %s: %w", cellPaths[i], err)
					}
					if errs[i] == nil {
						o.Cells.wrote()
					}
				}
				if errs[i] == nil && o.Paranoid && !results[i].Invariants.Clean() {
					errs[i] = fmt.Errorf("experiments: %s: %s", j.app, results[i].Invariants.Summary())
				}
				o.Progress.jobDone(results[i].Insts)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runPerApp runs one configuration for every app and returns results in app
// order.
func runPerApp(o Options, cfg nvp.Config, tr *power.Trace) ([]nvp.Result, error) {
	jobs := make([]job, len(o.Apps))
	for i, app := range o.Apps {
		jobs[i] = job{app: app, cfg: cfg, tr: tr}
	}
	return runAll(o, jobs)
}

// speedups returns base[i].Cycles / variant[i].Cycles per app.
func speedups(base, variant []nvp.Result) []float64 {
	out := make([]float64, len(base))
	for i := range base {
		out[i] = float64(base[i].Cycles) / float64(variant[i].Cycles)
	}
	return out
}

// filterComplete drops every app whose run hit the cycle budget in ANY of
// the aligned result sets: timing comparisons of truncated runs are
// meaningless, but one starved workload must not abort a whole sweep. It
// returns the surviving apps, the correspondingly filtered sets, and the
// names that were dropped (for the experiment's failure summary). Only a
// sweep with NO surviving app is an error.
func filterComplete(apps []string, sets ...[]nvp.Result) (kept []string, filtered [][]nvp.Result, skipped []string, err error) {
	bad := make([]bool, len(apps))
	for _, rs := range sets {
		for i := range rs {
			if !rs[i].Completed {
				bad[i] = true
			}
		}
	}
	kept = make([]string, 0, len(apps))
	filtered = make([][]nvp.Result, len(sets))
	for i, app := range apps {
		if bad[i] {
			skipped = append(skipped, app)
			continue
		}
		kept = append(kept, app)
		for s := range sets {
			filtered[s] = append(filtered[s], sets[s][i])
		}
	}
	if len(kept) == 0 {
		return nil, nil, skipped, fmt.Errorf("experiments: no workload completed within the cycle budget (weak trace or tiny MaxCycles); skipped: %s",
			strings.Join(skipped, ", "))
	}
	return kept, filtered, skipped, nil
}

// skippedNote renders the per-experiment failure summary appended to its
// String() output; empty when every app completed.
func skippedNote(skipped []string) string {
	if len(skipped) == 0 {
		return ""
	}
	return fmt.Sprintf("\n(skipped %d app(s), cycle budget exhausted: %s)",
		len(skipped), strings.Join(skipped, ", "))
}

// mergeSkipped accumulates unique skipped-app names across sweep points,
// preserving first-seen order.
func mergeSkipped(acc, more []string) []string {
	for _, app := range more {
		seen := false
		for _, a := range acc {
			if a == app {
				seen = true
				break
			}
		}
		if !seen {
			acc = append(acc, app)
		}
	}
	return acc
}
