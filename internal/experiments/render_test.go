package experiments

import (
	"strings"
	"testing"

	"ipex/internal/energy"
	"ipex/internal/nvp"
	"ipex/internal/power"
)

// TestRenderers exercises every result Stringer against hand-built values
// so the textual figures stay shaped like the paper's.
func TestRenderers(t *testing.T) {
	fig10 := &Fig10Result{
		Rows:          []Fig10Row{{App: "fft", NoPf: 0.9, IPEXData: 1.01, IPEXBoth: 1.05}},
		GmeanNoPf:     0.9,
		GmeanIPEXData: 1.01,
		GmeanIPEXBoth: 1.05,
		PrefetchGain:  0.11,
	}
	if out := fig10.String(); !strings.Contains(out, "1.050") || !strings.Contains(out, "gmean") {
		t.Errorf("Fig10 renderer:\n%s", out)
	}

	fig11 := &Fig11Result{Rows: fig10.Rows, GmeanIPEXBoth: 1.02}
	if out := fig11.String(); !strings.Contains(out, "ideal") {
		t.Errorf("Fig11 renderer:\n%s", out)
	}

	fig12 := &Fig12Result{Rows: []Fig12Row{{App: "fft", ReductionPct: 0.0711}}, Mean: 0.0711}
	if out := fig12.String(); !strings.Contains(out, "7.11%") {
		t.Errorf("Fig12 renderer:\n%s", out)
	}

	fig13 := &Fig13Result{
		Rows:        []Fig13Row{{App: "fft", TrafficReductionPct: 0.02, NormalizedEnergy: 0.98}},
		MeanTraffic: 0.02, MeanEnergy: 0.98,
	}
	if out := fig13.String(); !strings.Contains(out, "2.00%") || !strings.Contains(out, "0.980") {
		t.Errorf("Fig13 renderer:\n%s", out)
	}

	fig14 := &Fig14Result{
		Rows: []Fig14Row{{
			App:      "fft",
			Base:     energy.Breakdown{Cache: 0.1, Memory: 0.7, Compute: 0.1, BkRst: 0.1},
			IPEXData: energy.Breakdown{Cache: 0.1, Memory: 0.68, Compute: 0.1, BkRst: 0.1},
			IPEXBoth: energy.Breakdown{Cache: 0.1, Memory: 0.65, Compute: 0.1, BkRst: 0.1},
		}},
		MemoryReduction: 0.07, TotalReduction: 0.05,
	}
	if out := fig14.String(); !strings.Contains(out, "+IPEX(I+D)") || !strings.Contains(out, "0.650") {
		t.Errorf("Fig14 renderer:\n%s", out)
	}

	fig15 := &Fig15Result{
		Rows:   []Fig15Row{{App: "fft", IMiss: 0.02, IMissIPEX: 0.0208, DMiss: 0.05, DMissIPEX: 0.0502}},
		IDelta: 0.0008, DDelta: 0.0002,
	}
	if out := fig15.String(); !strings.Contains(out, "+0.080%") {
		t.Errorf("Fig15 renderer:\n%s", out)
	}

	fig01 := &Fig01Result{Rows: []Fig01Row{{CacheSize: 8192, Speedup: 0.7, LeakPct: 0.54}}}
	if out := fig01.String(); !strings.Contains(out, "8kB") || !strings.Contains(out, "54.00%") {
		t.Errorf("Fig01 renderer:\n%s", out)
	}

	fig02 := &Fig02Result{Rows: []Fig02Row{{App: "pegwitd", IStall: 0.1, DStall: 0.6}}, IGmean: 0.1, DGmean: 0.6}
	if out := fig02.String(); !strings.Contains(out, "60.00%") {
		t.Errorf("Fig02 renderer:\n%s", out)
	}

	t2 := &Table2Result{BaseAccI: 0.5403, IPEXAccI: 0.7288}
	if out := t2.String(); !strings.Contains(out, "54.03%") || !strings.Contains(out, "72.88%") {
		t.Errorf("Table2 renderer:\n%s", out)
	}
}

func TestSizeLabel(t *testing.T) {
	if sizeLabel(256) != "256B" || sizeLabel(2048) != "2kB" || sizeLabel(8192) != "8kB" {
		t.Errorf("size labels: %s %s %s", sizeLabel(256), sizeLabel(2048), sizeLabel(8192))
	}
}

// filterComplete must drop an app whose run is truncated in ANY aligned
// set, keep the rest, and only error when nothing survives.
func TestFilterComplete(t *testing.T) {
	apps := []string{"a", "b", "c"}
	ok := nvp.Result{Completed: true}
	bad := nvp.Result{Completed: false}

	kept, sets, skipped, err := filterComplete(apps,
		[]nvp.Result{ok, bad, ok},
		[]nvp.Result{ok, ok, ok})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 || kept[0] != "a" || kept[1] != "c" {
		t.Errorf("kept = %v", kept)
	}
	if len(skipped) != 1 || skipped[0] != "b" {
		t.Errorf("skipped = %v", skipped)
	}
	for s, rs := range sets {
		if len(rs) != 2 {
			t.Errorf("set %d not filtered: %d results", s, len(rs))
		}
	}

	// All apps truncated somewhere → an error naming the casualties.
	_, _, skipped, err = filterComplete(apps,
		[]nvp.Result{bad, ok, ok},
		[]nvp.Result{ok, bad, bad})
	if err == nil {
		t.Fatal("zero survivors accepted")
	}
	if len(skipped) != 3 {
		t.Errorf("skipped = %v, want all three", skipped)
	}
	if !strings.Contains(err.Error(), "a, b, c") {
		t.Errorf("error does not name the skipped apps: %v", err)
	}
}

// A truncated run no longer aborts the sweep: the app is dropped and the
// figure reports it.
func TestTruncatedRunIsSkippedNotFatal(t *testing.T) {
	o := Options{Scale: 0.05, Apps: []string{"fft"}}.norm()
	// An absurdly small cycle budget forces an incomplete run.
	cfg := nvp.DefaultConfig()
	cfg.MaxCycles = 1000
	rs, err := runPerApp(o, cfg, o.trace(power.RFHome))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Completed {
		t.Fatal("1000-cycle budget completed a run; test premise broken")
	}
	if _, _, _, err := filterComplete(o.Apps, rs); err == nil {
		t.Error("sole truncated app must error (nothing left to aggregate)")
	}
}

func TestSkippedNote(t *testing.T) {
	if skippedNote(nil) != "" {
		t.Error("empty skip list rendered a note")
	}
	note := skippedNote([]string{"fft", "qsort"})
	if !strings.Contains(note, "2 app(s)") || !strings.Contains(note, "fft, qsort") {
		t.Errorf("note = %q", note)
	}
	merged := mergeSkipped([]string{"fft"}, []string{"qsort", "fft"})
	if len(merged) != 2 || merged[0] != "fft" || merged[1] != "qsort" {
		t.Errorf("mergeSkipped = %v", merged)
	}
}
