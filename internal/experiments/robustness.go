package experiments

import (
	"fmt"

	"ipex/internal/fault"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/stats"
)

// RobustPoint is one configuration of a robustness sweep: the gmean IPEX
// speedup under a fault schedule, the number of faults the schedule
// actually injected (summed over all apps), and whether the runtime
// invariant checker stayed clean on every run of the point.
type RobustPoint struct {
	Label    string
	Speedup  float64
	Injected uint64
	Clean    bool
}

// RobustResult is a labelled robustness series. Unlike the sensitivity
// sweeps it runs every simulation in paranoid mode: a fault schedule that
// corrupted the simulator's own accounting would silently invalidate the
// sweep, so cleanliness is part of the reported result.
type RobustResult struct {
	Title   string
	Points  []RobustPoint
	Skipped []string
}

// String renders the sweep.
func (r *RobustResult) String() string {
	var t stats.Table
	t.Header("Config", "IPEXSpeedup", "FaultsInjected", "Paranoid")
	for _, p := range r.Points {
		status := "clean"
		if !p.Clean {
			status = "VIOLATED"
		}
		t.Row(p.Label, fmt.Sprintf("%.4f", p.Speedup), fmt.Sprintf("%d", p.Injected), status)
	}
	return r.Title + "\n" + t.String() + skippedNote(r.Skipped)
}

// allClean reports whether every run's invariant report is clean. Paranoid
// mode attaches a report to each result; a missing report counts as clean
// (the checker was off).
func allClean(sets ...[]nvp.Result) bool {
	for _, rs := range sets {
		for i := range rs {
			if !rs[i].Invariants.Clean() {
				return false
			}
		}
	}
	return true
}

// sensorLevel is one point of the RobustSensor sweep.
type sensorLevel struct {
	label string
	cfg   fault.SensorConfig
}

// robustSensorLevels is the degradation ladder: an ideal analog monitor,
// coarser ADC quantization, then increasing Gaussian noise and sample
// dropouts on the 8-bit converter.
var robustSensorLevels = []sensorLevel{
	{"ideal", fault.SensorConfig{}},
	{"12-bit", fault.SensorConfig{ADCBits: 12}},
	{"8-bit", fault.SensorConfig{ADCBits: 8}},
	{"8-bit+5mV", fault.SensorConfig{ADCBits: 8, NoiseV: 0.005}},
	{"8-bit+10mV", fault.SensorConfig{ADCBits: 8, NoiseV: 0.010}},
	{"8-bit+20mV+drop1%", fault.SensorConfig{ADCBits: 8, NoiseV: 0.020, DropoutProb: 0.01}},
}

// RobustSensor measures how IPEX's gain degrades as the voltage sensor
// feeding it degrades (EXPERIMENTS.md "Robustness sweep"). The conventional
// baseline has no IPEX and therefore no sensor in the loop, so it runs
// once; each ladder level reruns only the IPEX configuration with the
// faulted sensor between the capacitor and the controller.
func RobustSensor(o Options) (*RobustResult, error) {
	o = o.norm()
	tr := o.trace(power.RFHome)

	base := nvp.DefaultConfig()
	base.Paranoid = true
	baseRs, err := runPerApp(o, base, tr)
	if err != nil {
		return nil, err
	}

	res := &RobustResult{Title: "Robustness: IPEX speedup vs. voltage-sensor degradation, RFHome"}
	for _, lv := range robustSensorLevels {
		cfg := nvp.DefaultConfig().WithIPEX()
		cfg.Paranoid = true
		if lv.cfg.Active() {
			cfg.Faults = &fault.Config{Seed: o.TraceSeed, Sensor: lv.cfg}
		}
		rs, err := runPerApp(o, cfg, tr)
		if err != nil {
			return nil, fmt.Errorf("robust-sensor [%s]: %w", lv.label, err)
		}
		_, sets, skipped, err := filterComplete(o.Apps, baseRs, rs)
		if err != nil {
			return nil, fmt.Errorf("robust-sensor [%s]: %w", lv.label, err)
		}
		res.Skipped = mergeSkipped(res.Skipped, skipped)
		var injected uint64
		for i := range rs {
			if fs := rs[i].Faults; fs != nil {
				injected += fs.SensorDropouts + fs.SensorStuck
			}
		}
		res.Points = append(res.Points, RobustPoint{
			Label:    lv.label,
			Speedup:  stats.Geomean(speedups(sets[0], sets[1])),
			Injected: injected,
			Clean:    allClean(baseRs, rs),
		})
	}
	return res, nil
}

// robustCkptProbs is the per-block checkpoint write-failure probability
// ladder of the RobustCkpt sweep.
var robustCkptProbs = []float64{0, 0.01, 0.05, 0.10, 0.20}

// RobustCkpt measures IPEX's gain as checkpoint writes start tearing.
// Failing writes hit baseline and IPEX alike (checkpointing is shared
// machinery), so both columns rerun at every failure rate and the speedup
// compares like against like.
func RobustCkpt(o Options) (*RobustResult, error) {
	o = o.norm()
	tr := o.trace(power.RFHome)

	res := &RobustResult{Title: "Robustness: IPEX speedup vs. checkpoint write-failure rate, RFHome"}
	for _, p := range robustCkptProbs {
		label := fmt.Sprintf("fail=%g%%", p*100)
		var fc *fault.Config
		if p > 0 {
			fc = &fault.Config{Seed: o.TraceSeed, Checkpoint: fault.CheckpointConfig{WriteFailProb: p}}
		}
		base := nvp.DefaultConfig()
		base.Paranoid = true
		base.Faults = fc
		ipex := nvp.DefaultConfig().WithIPEX()
		ipex.Paranoid = true
		ipex.Faults = fc

		baseRs, err := runPerApp(o, base, tr)
		if err != nil {
			return nil, fmt.Errorf("robust-ckpt [%s]: %w", label, err)
		}
		ipexRs, err := runPerApp(o, ipex, tr)
		if err != nil {
			return nil, fmt.Errorf("robust-ckpt [%s]: %w", label, err)
		}
		_, sets, skipped, err := filterComplete(o.Apps, baseRs, ipexRs)
		if err != nil {
			return nil, fmt.Errorf("robust-ckpt [%s]: %w", label, err)
		}
		res.Skipped = mergeSkipped(res.Skipped, skipped)
		var injected uint64
		for _, rs := range [][]nvp.Result{baseRs, ipexRs} {
			for i := range rs {
				if fs := rs[i].Faults; fs != nil {
					injected += fs.CheckpointWriteFailures
				}
			}
		}
		res.Points = append(res.Points, RobustPoint{
			Label:    label,
			Speedup:  stats.Geomean(speedups(sets[0], sets[1])),
			Injected: injected,
			Clean:    allClean(baseRs, ipexRs),
		})
	}
	return res, nil
}
