package experiments

import "sync/atomic"

// Progress tracks sweep completion for live telemetry (cmd/experiments
// -listen). It holds plain atomic counters only: rates and ETAs need the
// wall clock, which the determinism lint forbids inside internal/, so those
// are derived in the cmd layer from successive snapshots.
//
// Total grows as experiments enqueue their cells (a sweep's full size is
// not known up front), so Done/Total is "of the work discovered so far".
// All methods are nil-receiver safe; a sweep without telemetry pays only a
// nil compare per job.
type Progress struct {
	total atomic.Uint64
	done  atomic.Uint64
	insts atomic.Uint64
}

// addTotal records n newly enqueued sweep cells.
func (p *Progress) addTotal(n uint64) {
	if p != nil {
		p.total.Add(n)
	}
}

// jobDone records one finished cell and the instructions it simulated.
func (p *Progress) jobDone(insts uint64) {
	if p != nil {
		p.done.Add(1)
		p.insts.Add(insts)
	}
}

// Snapshot returns (cells done, cells enqueued, instructions simulated).
func (p *Progress) Snapshot() (done, total, insts uint64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.done.Load(), p.total.Load(), p.insts.Load()
}
