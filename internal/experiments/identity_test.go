package experiments

import (
	"errors"
	"reflect"
	"testing"

	"ipex/internal/harness"
	"ipex/internal/nvp"
	"ipex/internal/prefetch"
)

// nonIdentityConfigFields lists every nvp.Config field that is deliberately
// OUTSIDE the content identity, with the reason. Everything else must map
// into ConfigIdentity — TestConfigIdentityExhaustive enforces it, so a new
// Config field cannot silently drop out of the cell key (which would let
// stale journal and cache entries match fresh requests).
var nonIdentityConfigFields = map[string]string{
	"Tracer":           "observer: a traced re-run replays the same result",
	"Metrics":          "observer: counters never alter simulated behaviour",
	"DisableFastPaths": "loop selection is bit-identical by contract (golden-pinned)",
}

// identityFieldAliases maps Config field names to the ConfigIdentity field
// that carries them when the names differ. The factory funcs themselves
// are unhashable; their declared IDs are the identity.
var identityFieldAliases = map[string]string{
	"IPrefetcherFactory": "IFactory",
	"IPrefetcherID":      "IFactory",
	"DPrefetcherFactory": "DFactory",
	"DPrefetcherID":      "DFactory",
}

// TestConfigIdentityExhaustive pins the identity schema against the config
// schema from both directions: every nvp.Config field is either carried by
// ConfigIdentity or explicitly excluded above, and every ConfigIdentity
// field corresponds to a live Config field (no dead key material).
func TestConfigIdentityExhaustive(t *testing.T) {
	cfgT := reflect.TypeOf(nvp.Config{})
	idT := reflect.TypeOf(ConfigIdentity{})

	idFields := make(map[string]bool, idT.NumField())
	for i := 0; i < idT.NumField(); i++ {
		idFields[idT.Field(i).Name] = true
	}

	covered := make(map[string]bool, idT.NumField())
	for i := 0; i < cfgT.NumField(); i++ {
		name := cfgT.Field(i).Name
		target := name
		if alias, ok := identityFieldAliases[name]; ok {
			target = alias
		}
		if idFields[target] {
			if nonIdentityConfigFields[name] != "" {
				t.Errorf("nvp.Config.%s is both in ConfigIdentity (as %s) and in the exclusion list; pick one", name, target)
			}
			covered[target] = true
			continue
		}
		if nonIdentityConfigFields[name] == "" {
			t.Errorf("nvp.Config.%s is neither carried by ConfigIdentity nor excluded with a reason: a result-affecting field outside the key lets stale cache/journal entries match fresh requests", name)
		}
	}
	for name := range idFields {
		if !covered[name] {
			t.Errorf("ConfigIdentity.%s matches no nvp.Config field: dead key material (renamed or removed Config field?)", name)
		}
	}
}

// TestConfigIdentitySameTypes verifies identity fields carry the exact
// type of the config field they mirror, so no narrowing conversion can
// alias two distinct configurations onto one key.
func TestConfigIdentitySameTypes(t *testing.T) {
	cfgT := reflect.TypeOf(nvp.Config{})
	idT := reflect.TypeOf(ConfigIdentity{})
	for i := 0; i < idT.NumField(); i++ {
		f := idT.Field(i)
		if f.Name == "IFactory" || f.Name == "DFactory" {
			continue // string IDs standing in for funcs, by design
		}
		cf, ok := cfgT.FieldByName(f.Name)
		if !ok {
			continue // reported by TestConfigIdentityExhaustive
		}
		if cf.Type != f.Type {
			t.Errorf("ConfigIdentity.%s has type %v, nvp.Config.%s has %v", f.Name, f.Type, cf.Name, cf.Type)
		}
	}
}

// TestFactoryIdentityInKey pins the bugfix: factory-built prefetchers hash
// by their declared ID, not by mere presence, so two different custom
// prefetchers can no longer collide onto one cell key.
func TestFactoryIdentityInKey(t *testing.T) {
	factoryA := func() prefetch.Prefetcher { return prefetch.NewSequential() }
	factoryB := func() prefetch.Prefetcher { return prefetch.NewStride(16) }

	cfgA := nvp.DefaultConfig()
	cfgA.DPrefetcherFactory = factoryA
	cfgA.DPrefetcherID = "custom-a/v1"
	cfgB := nvp.DefaultConfig()
	cfgB.DPrefetcherFactory = factoryB
	cfgB.DPrefetcherID = "custom-b/v1"

	idA, err := NewConfigIdentity(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := NewConfigIdentity(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if harness.Key(idA) == harness.Key(idB) {
		t.Fatal("two different factory IDs produced the same config identity")
	}

	// Same ID, either factory instance: identical identity (the ID is the
	// contract; the caller versions it with behaviour).
	cfgB2 := cfgB
	cfgB2.DPrefetcherID = "custom-a/v1"
	idB2, err := NewConfigIdentity(cfgB2)
	if err != nil {
		t.Fatal(err)
	}
	if harness.Key(idA) != harness.Key(idB2) {
		t.Fatal("equal factory IDs produced different identities")
	}

	// A factory-built config must also differ from the same config without
	// a factory.
	plain, err := NewConfigIdentity(nvp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if harness.Key(plain) == harness.Key(idA) {
		t.Fatal("factory-built config hashed identically to the factory-free default")
	}
}

// TestUnnamedFactoryRefused pins the refusal path: a factory without an ID
// has no stable identity, so NewConfigIdentity rejects it and the sweep's
// cellKey returns the empty key — which the harness treats as unkeyable
// (never journaled, never replayed, always simulated).
func TestUnnamedFactoryRefused(t *testing.T) {
	cfg := nvp.DefaultConfig()
	cfg.IPrefetcherFactory = func() prefetch.Prefetcher { return prefetch.NewSequential() }

	if _, err := NewConfigIdentity(cfg); !errors.Is(err, ErrUnnamedFactory) {
		t.Fatalf("unnamed instruction factory: got %v, want ErrUnnamedFactory", err)
	}
	cfgD := nvp.DefaultConfig()
	cfgD.DPrefetcherFactory = func() prefetch.Prefetcher { return prefetch.NewStride(16) }
	if _, err := NewConfigIdentity(cfgD); !errors.Is(err, ErrUnnamedFactory) {
		t.Fatalf("unnamed data factory: got %v, want ErrUnnamedFactory", err)
	}

	o := Options{Scale: 0.02, TraceSeed: 1}.norm()
	tr := o.trace(0)
	if k := cellKey(o, job{app: "fft", tr: tr, cfg: cfg}, o.effective(cfg)); k != "" {
		t.Fatalf("unnamed-factory cell got key %q, want \"\" (unkeyable)", k)
	}

	// Naming the factory restores a stable key.
	cfg.IPrefetcherID = "custom/v1"
	if k := cellKey(o, job{app: "fft", tr: tr, cfg: cfg}, o.effective(cfg)); k == "" {
		t.Fatal("named-factory cell still unkeyable")
	}
}

// TestUnnamedFactoryValidates pins nvp.Config.Validate's guard: an ID
// without its factory is a configuration error (it would fork the key
// space for behaviourally identical configs).
func TestUnnamedFactoryValidates(t *testing.T) {
	cfg := nvp.DefaultConfig()
	cfg.IPrefetcherID = "ghost/v1"
	if err := cfg.Validate(); err == nil {
		t.Fatal("IPrefetcherID without a factory validated")
	}
	cfg = nvp.DefaultConfig()
	cfg.DPrefetcherID = "ghost/v1"
	if err := cfg.Validate(); err == nil {
		t.Fatal("DPrefetcherID without a factory validated")
	}
}
