// Package power models the harvested-energy input of an EHS as a digitized
// power trace, following the paper's methodology (§6): the harvester's
// output is logged as a text file of average-power samples, one per 10 µs
// interval, and the simulator replays the file so that every configuration
// receives exactly the same input energy.
//
// Four synthetic sources mirror the four real traces the paper evaluates:
// RFHome and RFOffice (bursty, weak radio-frequency energy) and solar and
// thermal (a higher share of stable energy). Real logs in the same text
// format can be loaded with Load.
package power

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"ipex/internal/energy"
)

// SampleIntervalSeconds is the trace sampling interval: each sample is the
// average input power over 10 µs.
const SampleIntervalSeconds = 10e-6

// SampleIntervalCycles is the interval length in 200 MHz CPU cycles.
const SampleIntervalCycles = uint64(SampleIntervalSeconds * energy.ClockHz)

// Trace is a replayable sequence of average-power samples in watts.
// Replay wraps around, so a short trace powers an arbitrarily long run.
type Trace struct {
	Name    string
	Samples []float64 // average power per interval, in watts
}

// PowerAt returns the average input power (watts) during the interval that
// contains absolute cycle number `cycle`. An empty trace supplies no energy.
func (t *Trace) PowerAt(cycle uint64) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	idx := (cycle / SampleIntervalCycles) % uint64(len(t.Samples))
	return t.Samples[idx]
}

// EnergyNJ returns the energy harvested over `cycles` CPU cycles at power
// p watts: p[W] * cycles * 5 ns, in nanojoules.
func EnergyNJ(p float64, cycles uint64) float64 {
	return p * float64(cycles) * energy.CycleSeconds * 1e9
}

// MeanPower returns the average of all samples in watts.
func (t *Trace) MeanPower() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range t.Samples {
		sum += s
	}
	return sum / float64(len(t.Samples))
}

// Duration returns the trace length in seconds before it wraps.
func (t *Trace) Duration() float64 {
	return float64(len(t.Samples)) * SampleIntervalSeconds
}

// Save writes the trace in the paper's text format: one decimal
// average-power value (watts) per line.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range t.Samples {
		if _, err := fmt.Fprintf(bw, "%.9f\n", s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a trace in the text format produced by Save (and by the
// paper's energy-harvester logger): one float per line, in watts. Blank
// lines and lines starting with '#' are ignored; surrounding whitespace
// (including a CRLF logger's '\r') is tolerated. Every malformed line —
// non-numeric text, several values on one line, NaN/Inf, negative power —
// is rejected with its line number rather than silently skewing the
// simulated energy input.
func Load(name string, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var samples []float64
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if len(txt) == 0 || txt[0] == '#' {
			continue
		}
		if fields := strings.Fields(txt); len(fields) != 1 {
			return nil, fmt.Errorf("power: %s line %d: expected one power value per line, got %d fields %q",
				name, line, len(fields), txt)
		}
		v, err := strconv.ParseFloat(txt, 64)
		if err != nil {
			return nil, fmt.Errorf("power: %s line %d: %w", name, line, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("power: %s line %d: non-finite power %q", name, line, txt)
		}
		if v < 0 {
			return nil, fmt.Errorf("power: %s line %d: negative power %g", name, line, v)
		}
		samples = append(samples, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("power: reading %s: %w", name, err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("power: trace %s has no samples (empty file or comments only)", name)
	}
	return &Trace{Name: name, Samples: samples}, nil
}
