package power

import (
	"fmt"

	"ipex/internal/capacitor"
	"ipex/internal/energy"
)

// OutageEstimate summarizes how a power trace would drive the
// intermittent-execution life cycle for a system with a constant running
// draw — a fast capacitor-only model (no core simulation) for sizing
// studies and trace triage. The full simulator refines this with the
// workload's actual dynamic draw.
type OutageEstimate struct {
	// Outages is the number of power failures over one pass of the trace.
	Outages uint64
	// OnSeconds/OffSeconds split the trace duration into powered and
	// recharging time.
	OnSeconds  float64
	OffSeconds float64
	// MeanCycleSeconds is the average powered duration of a completed
	// power cycle (0 if no outage occurred).
	MeanCycleSeconds float64
	// HarvestedJ and ShedJ are the total energy stored vs. discarded at
	// the Vmax clamp, in joules.
	HarvestedJ float64
	ShedJ      float64
}

// OnFraction returns the powered share of the trace duration.
func (e OutageEstimate) OnFraction() float64 {
	total := e.OnSeconds + e.OffSeconds
	if total == 0 {
		return 0
	}
	return e.OnSeconds / total
}

// String summarizes the estimate.
func (e OutageEstimate) String() string {
	return fmt.Sprintf("outages=%d on=%.1f%% meanCycle=%.1fµs shed=%.1f%%",
		e.Outages, 100*e.OnFraction(), 1e6*e.MeanCycleSeconds,
		100*e.ShedJ/(e.HarvestedJ+e.ShedJ+1e-30))
}

// Analyze walks one pass of the trace against a capacitor configuration
// and a constant system draw (watts) while powered, reproducing the
// on/backup/off/reboot life cycle at trace-sample granularity.
func Analyze(tr *Trace, drawWatts float64, cfg capacitor.Config) (OutageEstimate, error) {
	if tr == nil || len(tr.Samples) == 0 {
		return OutageEstimate{}, fmt.Errorf("power: empty trace")
	}
	if drawWatts < 0 {
		return OutageEstimate{}, fmt.Errorf("power: negative draw %g", drawWatts)
	}
	cap_, err := capacitor.New(cfg)
	if err != nil {
		return OutageEstimate{}, err
	}
	cap_.SetVoltage(cfg.Von)

	var est OutageEstimate
	on := true
	var cycleStartS float64
	var cycleSeconds []float64
	nowS := 0.0

	for _, p := range tr.Samples {
		inNJ := p * SampleIntervalSeconds * 1e9
		stored := cap_.Harvest(inNJ)
		est.HarvestedJ += stored * 1e-9
		est.ShedJ += (inNJ - stored) * 1e-9

		if on {
			cap_.Consume(drawWatts * SampleIntervalSeconds * 1e9)
			est.OnSeconds += SampleIntervalSeconds
			if cap_.BelowBackup() {
				est.Outages++
				cycleSeconds = append(cycleSeconds, nowS+SampleIntervalSeconds-cycleStartS)
				on = false
			}
		} else {
			est.OffSeconds += SampleIntervalSeconds
			if cap_.AtOrAboveOn() {
				on = true
				cycleStartS = nowS + SampleIntervalSeconds
			}
		}
		nowS += SampleIntervalSeconds
	}
	if len(cycleSeconds) > 0 {
		sum := 0.0
		for _, c := range cycleSeconds {
			sum += c
		}
		est.MeanCycleSeconds = sum / float64(len(cycleSeconds))
	}
	return est, nil
}

// DefaultSystemDrawWatts approximates the default NVP's running draw:
// leakage (two caches + NVM + core) plus typical dynamic activity. It is
// the draw the synthetic sources are calibrated around.
func DefaultSystemDrawWatts() float64 {
	leakMW := 2*energy.CacheLeakMW + energy.NVMLeakMW + energy.CoreLeakMW
	const dynamicMW = 8.0 // empirical dynamic draw of the default system
	return (leakMW + dynamicMW) * 1e-3
}
