package power

import (
	"bytes"
	"math"
	"testing"
)

// FuzzHarvestTraceParse throws arbitrary bytes at the harvest-log parser:
// Load must never panic, every accepted trace must contain only finite
// non-negative samples, and an accepted trace must survive a Save/Load
// round trip with the same sample count.
func FuzzHarvestTraceParse(f *testing.F) {
	f.Add([]byte("0.001\n0.002\n"))
	f.Add([]byte("# harvested power log\n\n1.5e-3\n"))
	f.Add([]byte("NaN\n"))
	f.Add([]byte("+Inf\n"))
	f.Add([]byte("-0.5\n"))
	f.Add([]byte("0.1 0.2\n"))
	f.Add([]byte("0.001,0.002\n"))
	f.Add([]byte("  0.003  \r\n"))
	f.Add([]byte("1.5e\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Load("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(tr.Samples) == 0 {
			t.Fatal("Load succeeded with zero samples")
		}
		for i, s := range tr.Samples {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
				t.Fatalf("sample %d = %g escaped validation", i, s)
			}
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("Save of an accepted trace failed: %v", err)
		}
		rt, err := Load("fuzz-roundtrip", &buf)
		if err != nil {
			t.Fatalf("Save output rejected by Load: %v", err)
		}
		if len(rt.Samples) != len(tr.Samples) {
			t.Fatalf("round trip changed sample count: %d -> %d",
				len(tr.Samples), len(rt.Samples))
		}
	})
}
