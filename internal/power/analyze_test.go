package power

import (
	"math"
	"strings"
	"testing"

	"ipex/internal/capacitor"
)

func TestAnalyzeValidation(t *testing.T) {
	cfg := capacitor.DefaultConfig()
	if _, err := Analyze(nil, 0.01, cfg); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := Analyze(&Trace{}, 0.01, cfg); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Analyze(Generate(RFHome, 1000, 1), -1, cfg); err == nil {
		t.Error("negative draw accepted")
	}
	if _, err := Analyze(Generate(RFHome, 1000, 1), 0.01, capacitor.Config{}); err == nil {
		t.Error("invalid capacitor accepted")
	}
}

func TestAnalyzeStrongSupplyNeverDies(t *testing.T) {
	// Input power always above the draw: no outages, fully on.
	tr := &Trace{Name: "strong", Samples: make([]float64, 2000)}
	for i := range tr.Samples {
		tr.Samples[i] = 50e-3
	}
	est, err := Analyze(tr, 20e-3, capacitor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if est.Outages != 0 {
		t.Errorf("outages = %d with a strong supply", est.Outages)
	}
	if est.OnFraction() < 0.999 {
		t.Errorf("on fraction = %v, want ~1", est.OnFraction())
	}
	if est.ShedJ <= 0 {
		t.Error("a strong supply must shed energy at the clamp")
	}
}

func TestAnalyzeDeadSupplyDiesOnce(t *testing.T) {
	tr := &Trace{Name: "dead", Samples: make([]float64, 5000)}
	est, err := Analyze(tr, 20e-3, capacitor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if est.Outages != 1 {
		t.Errorf("outages = %d, want exactly 1 (initial charge spent, never recharges)", est.Outages)
	}
	if est.OffSeconds <= est.OnSeconds {
		t.Error("a dead supply should be mostly off")
	}
	if est.HarvestedJ != 0 {
		t.Errorf("harvested %v J from a dead supply", est.HarvestedJ)
	}
}

func TestAnalyzeWeakSupplyCycles(t *testing.T) {
	// Drip supply below the draw: the system must cycle on/off repeatedly.
	tr := &Trace{Name: "drip", Samples: make([]float64, 20000)}
	for i := range tr.Samples {
		tr.Samples[i] = 5e-3
	}
	est, err := Analyze(tr, 20e-3, capacitor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if est.Outages < 10 {
		t.Errorf("outages = %d, want many for a drip supply", est.Outages)
	}
	if est.MeanCycleSeconds <= 0 {
		t.Error("mean cycle length missing")
	}
	// Energy conservation at steady state: on-time power balance.
	// on-time * draw ≈ harvested (within the capacitor's storage slack).
	spent := est.OnSeconds * 20e-3
	if math.Abs(spent-est.HarvestedJ) > 2e-6+0.1*est.HarvestedJ {
		t.Errorf("energy balance off: spent %.2eJ vs harvested %.2eJ", spent, est.HarvestedJ)
	}
}

func TestAnalyzeMatchesSimulatorRegime(t *testing.T) {
	// The analytic estimate should land in the same outage regime as the
	// synthetic sources were calibrated for: frequent outages on RFHome.
	est, err := Analyze(Generate(RFHome, DefaultTraceSamples, 1), DefaultSystemDrawWatts(), capacitor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if est.Outages < 50 {
		t.Errorf("RFHome outages = %d over 0.5s, want frequent (>=50)", est.Outages)
	}
	if est.OnFraction() < 0.05 || est.OnFraction() > 0.95 {
		t.Errorf("on fraction = %v, want a genuinely intermittent regime", est.OnFraction())
	}
}

func TestEstimateString(t *testing.T) {
	e := OutageEstimate{Outages: 3, OnSeconds: 1, OffSeconds: 1}
	if !strings.Contains(e.String(), "outages=3") {
		t.Errorf("String() = %q", e.String())
	}
	var zero OutageEstimate
	if zero.OnFraction() != 0 {
		t.Error("zero estimate OnFraction should be 0")
	}
}
