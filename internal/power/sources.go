package power

import (
	"fmt"
	"math"

	"ipex/internal/rng"
)

// Source identifies one of the synthetic ambient-energy sources.
type Source int

const (
	// RFHome models radio-frequency harvesting in a home: weak, bursty
	// power with long quiet gaps (the paper's weakest source).
	RFHome Source = iota
	// RFOffice models RF harvesting in an office: bursty like RFHome but
	// with somewhat denser bursts.
	RFOffice
	// Solar models an indoor photovoltaic cell: a relatively high share of
	// stable energy with slow drift and occasional shading dips.
	Solar
	// Thermal models a thermoelectric generator: the most stable source,
	// moderate power with small noise.
	Thermal
)

// Sources lists all synthetic sources in the order the paper's Figure 23
// sweeps them (most stable first).
var Sources = []Source{Thermal, Solar, RFOffice, RFHome}

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case RFHome:
		return "RFHome"
	case RFOffice:
		return "RFOffice"
	case Solar:
		return "solar"
	case Thermal:
		return "thermal"
	}
	return fmt.Sprintf("Source(%d)", int(s))
}

// ParseSource maps a name (as printed by String) back to a Source.
func ParseSource(name string) (Source, error) {
	for _, s := range Sources {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("power: unknown source %q (want RFHome, RFOffice, solar, or thermal)", name)
}

// DefaultTraceSamples is the default generated trace length: 50k samples =
// 0.5 s of harvesting, long enough that replay wraparound does not correlate
// with program phase.
const DefaultTraceSamples = 50_000

// Generate synthesizes a power trace for the given source. The same
// (source, n, seed) triple always yields the identical trace, so every
// simulator configuration replays exactly the same input energy.
//
// Magnitudes are chosen so that the default NVP configuration (≈14 mW draw
// while running) experiences frequent outages on the RF sources and fewer,
// longer power cycles on solar/thermal — the qualitative regime of §6.7.9.
func Generate(src Source, n int, seed uint64) *Trace {
	if n <= 0 {
		n = DefaultTraceSamples
	}
	r := rng.New(seed ^ (uint64(src)+1)*0x51_7c_c1_b7_27_22_0a_95)
	samples := make([]float64, n)
	// The default NVP draws ≈22 mW while running, so burst power above
	// that pegs the capacitor at Vmax (energy momentarily free — IPEX's
	// high-performance mode), while quiet stretches discharge it toward
	// the outage (energy binding — energy-saving mode). RF sources swing
	// hard between the two; solar/thermal carry a higher share of stable
	// energy, as in the paper's trace characterization (§6.7.9).
	switch src {
	case RFHome:
		genBursty(r, samples, burstyParams{
			onPower: 27e-3, offPower: 1.5e-3, noise: 0.30,
			pOnToOff: 0.12, pOffToOn: 0.03,
		})
	case RFOffice:
		genBursty(r, samples, burstyParams{
			onPower: 26e-3, offPower: 2.2e-3, noise: 0.28,
			pOnToOff: 0.12, pOffToOn: 0.04,
		})
	case Solar:
		genSolar(r, samples)
	case Thermal:
		genThermal(r, samples)
	}
	return &Trace{Name: src.String(), Samples: samples}
}

type burstyParams struct {
	onPower, offPower  float64 // watts
	noise              float64 // relative sigma while on
	pOnToOff, pOffToOn float64
}

// genBursty produces a two-state (burst / quiet) Markov-modulated power
// stream: the canonical shape of opportunistic RF harvesting.
func genBursty(r *rng.RNG, out []float64, p burstyParams) {
	on := r.Float64() < 0.5
	for i := range out {
		if on {
			if r.Float64() < p.pOnToOff {
				on = false
			}
		} else if r.Float64() < p.pOffToOn {
			on = true
		}
		if on {
			v := p.onPower * (1 + p.noise*r.Norm())
			if v < 0 {
				v = 0
			}
			out[i] = v
		} else {
			out[i] = p.offPower * (1 + 0.1*r.Norm())
			if out[i] < 0 {
				out[i] = 0
			}
		}
	}
}

// genSolar produces slow sinusoidal drift around a healthy mean with
// occasional multi-millisecond shading dips. A significant portion of poor
// energy remains, matching the paper's observation that even solar traces
// cause frequent outages with a 0.47 µF capacitor.
func genSolar(r *rng.RNG, out []float64) {
	const mean = 15e-3
	shade := 0
	for i := range out {
		if shade == 0 && r.Float64() < 0.0003 {
			shade = 200 + r.Intn(800) // 2–10 ms dip
		}
		drift := 1 + 0.45*math.Sin(2*math.Pi*float64(i)/9000)
		v := mean * drift * (1 + 0.06*r.Norm())
		if shade > 0 {
			shade--
			v *= 0.08
		}
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
}

// genThermal produces the steadiest stream: a slowly wandering mean with
// small noise.
func genThermal(r *rng.RNG, out []float64) {
	level := 18e-3
	for i := range out {
		// Ornstein–Uhlenbeck-style mean reversion keeps the level bounded.
		level += 0.001*(18e-3-level) + 0.05e-3*r.Norm()
		if level < 2e-3 {
			level = 2e-3
		}
		v := level * (1 + 0.03*r.Norm())
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
}
