package power

import (
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, src := range Sources {
		a := Generate(src, 5000, 7)
		b := Generate(src, 5000, 7)
		if len(a.Samples) != len(b.Samples) {
			t.Fatalf("%v: lengths differ", src)
		}
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				t.Fatalf("%v: sample %d differs (%v vs %v)", src, i, a.Samples[i], b.Samples[i])
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(RFHome, 5000, 1)
	b := Generate(RFHome, 5000, 2)
	same := 0
	for i := range a.Samples {
		if a.Samples[i] == b.Samples[i] {
			same++
		}
	}
	if same > len(a.Samples)/2 {
		t.Errorf("different seeds produced %d/%d identical samples", same, len(a.Samples))
	}
}

func TestGenerateNonNegative(t *testing.T) {
	for _, src := range Sources {
		tr := Generate(src, 20000, 3)
		for i, v := range tr.Samples {
			if v < 0 {
				t.Fatalf("%v sample %d negative: %v", src, i, v)
			}
		}
	}
}

func TestGenerateDefaultLength(t *testing.T) {
	tr := Generate(RFHome, 0, 1)
	if len(tr.Samples) != DefaultTraceSamples {
		t.Errorf("default length = %d, want %d", len(tr.Samples), DefaultTraceSamples)
	}
}

func TestSourceCharacteristics(t *testing.T) {
	// §6.7.9: solar and thermal carry a higher share of stable energy
	// than the RF sources. Measure stability as the fraction of samples
	// above half the source's own mean.
	stability := func(tr *Trace) float64 {
		mean := tr.MeanPower()
		n := 0
		for _, v := range tr.Samples {
			if v > mean/2 {
				n++
			}
		}
		return float64(n) / float64(len(tr.Samples))
	}
	rf := stability(Generate(RFHome, 40000, 1))
	th := stability(Generate(Thermal, 40000, 1))
	so := stability(Generate(Solar, 40000, 1))
	if th <= rf || so <= rf {
		t.Errorf("stability ordering violated: thermal=%.2f solar=%.2f RFHome=%.2f", th, so, rf)
	}
}

func TestRFBurstsExceedSystemDraw(t *testing.T) {
	// The bimodal IPEX regime requires RF bursts above the ~22 mW run
	// draw and quiet power well below it.
	tr := Generate(RFHome, 40000, 1)
	above, below := 0, 0
	for _, v := range tr.Samples {
		if v > 22e-3 {
			above++
		}
		if v < 5e-3 {
			below++
		}
	}
	if above < len(tr.Samples)/20 {
		t.Errorf("too few burst samples above draw: %d/%d", above, len(tr.Samples))
	}
	if below < len(tr.Samples)/4 {
		t.Errorf("too few quiet samples: %d/%d", below, len(tr.Samples))
	}
}

func TestParseSource(t *testing.T) {
	for _, src := range Sources {
		got, err := ParseSource(src.String())
		if err != nil || got != src {
			t.Errorf("ParseSource(%q) = %v, %v", src.String(), got, err)
		}
	}
	if _, err := ParseSource("fusion"); err == nil {
		t.Error("ParseSource accepted an unknown source")
	}
}

func TestSourceStringUnknown(t *testing.T) {
	if s := Source(42).String(); s != "Source(42)" {
		t.Errorf("unknown source String() = %q", s)
	}
}

func TestMeanPowerBands(t *testing.T) {
	// Keep each source in its calibrated band so simulator-level tests
	// stay meaningful: RF means are a few mW, solar/thermal 10–20 mW.
	bands := map[Source][2]float64{
		RFHome:   {3e-3, 12e-3},
		RFOffice: {4e-3, 14e-3},
		Solar:    {9e-3, 22e-3},
		Thermal:  {14e-3, 22e-3},
	}
	for src, b := range bands {
		m := Generate(src, 40000, 1).MeanPower()
		if m < b[0] || m > b[1] {
			t.Errorf("%v mean power %.4f W outside [%v, %v]", src, m, b[0], b[1])
		}
	}
}
