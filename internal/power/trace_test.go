package power

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ipex/internal/energy"
)

func TestSampleIntervalCycles(t *testing.T) {
	// 10 µs at 200 MHz is 2000 cycles.
	if SampleIntervalCycles != 2000 {
		t.Errorf("SampleIntervalCycles = %d, want 2000", SampleIntervalCycles)
	}
}

func TestPowerAtWrapsAround(t *testing.T) {
	tr := &Trace{Name: "x", Samples: []float64{1, 2, 3}}
	if got := tr.PowerAt(0); got != 1 {
		t.Errorf("PowerAt(0) = %v", got)
	}
	if got := tr.PowerAt(SampleIntervalCycles); got != 2 {
		t.Errorf("PowerAt(one interval) = %v", got)
	}
	if got := tr.PowerAt(3 * SampleIntervalCycles); got != 1 {
		t.Errorf("PowerAt should wrap: got %v", got)
	}
	if got := tr.PowerAt(SampleIntervalCycles - 1); got != 1 {
		t.Errorf("PowerAt(interval-1) = %v, want still sample 0", got)
	}
}

func TestPowerAtEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if got := tr.PowerAt(123456); got != 0 {
		t.Errorf("empty trace PowerAt = %v", got)
	}
}

func TestEnergyNJ(t *testing.T) {
	// 1 W for 2000 cycles (10 µs) = 10 µJ = 10000 nJ.
	got := EnergyNJ(1, SampleIntervalCycles)
	if math.Abs(got-10000) > 1e-6 {
		t.Errorf("EnergyNJ(1W, 10µs) = %v nJ, want 10000", got)
	}
	_ = energy.ClockHz // document the dependency
}

func TestMeanPowerAndDuration(t *testing.T) {
	tr := &Trace{Samples: []float64{2e-3, 4e-3}}
	if got := tr.MeanPower(); math.Abs(got-3e-3) > 1e-12 {
		t.Errorf("MeanPower = %v", got)
	}
	if got := tr.Duration(); math.Abs(got-2*SampleIntervalSeconds) > 1e-15 {
		t.Errorf("Duration = %v", got)
	}
	empty := &Trace{}
	if empty.MeanPower() != 0 {
		t.Error("empty MeanPower should be 0")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		samples := make([]float64, 0, len(raw)+1)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			samples = append(samples, math.Mod(math.Abs(v), 1))
		}
		samples = append(samples, 0.005) // ensure non-empty
		tr := &Trace{Name: "t", Samples: samples}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			return false
		}
		got, err := Load("t", &buf)
		if err != nil {
			return false
		}
		if len(got.Samples) != len(samples) {
			return false
		}
		for i := range samples {
			if math.Abs(got.Samples[i]-samples[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# harvested power log\n\n0.001\n0.002\n# trailing comment\n0.003\n"
	tr, err := Load("log", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 3 || tr.Samples[1] != 0.002 {
		t.Errorf("parsed %v", tr.Samples)
	}
}

// TestLoadRejectsGarbage pins the hardened parser: every malformed input is
// refused with a message naming the offending line, so a corrupted harvest
// log fails loudly instead of silently skewing the simulated energy input.
func TestLoadRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring the error must contain; "" means accept
	}{
		{"garbage-line", "0.001\nnotanumber\n", "line 2"},
		{"negative", "-0.5\n", "negative power"},
		{"empty", "", "no samples"},
		{"only-comments", "# nothing\n", "no samples"},
		{"only-blanks", "\n\n  \n", "no samples"},
		{"nan", "0.001\nNaN\n", "non-finite"},
		{"inf", "0.001\n+Inf\n0.002\n", "non-finite"},
		{"neg-inf", "-Inf\n", "non-finite"},
		{"two-fields", "0.001 0.002\n", "2 fields"},
		{"csv-row", "0.001,0.002\n", "line 1"},
		{"truncated-exponent", "1.5e\n", "line 1"},
		{"hex-garbage", "0xZZ\n", "line 1"},
		// Tolerated variants: whitespace padding, CRLF line endings, a
		// truncated final line without '\n'.
		{"padded", "  0.001  \n\t0.002\t\n", ""},
		{"crlf", "0.001\r\n0.002\r\n", ""},
		{"no-final-newline", "0.001\n0.002", ""},
	}
	for _, tc := range cases {
		tr, err := Load(tc.name, strings.NewReader(tc.in))
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			} else if len(tr.Samples) != 2 {
				t.Errorf("%s: parsed %v, want 2 samples", tc.name, tr.Samples)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: malformed input accepted: %v", tc.name, tr.Samples)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s: error %q does not name the trace", tc.name, err)
		}
	}
}
