// Package fault is the simulator's deterministic fault-injection layer and
// runtime invariant vocabulary.
//
// The paper's evaluation assumes three ideal components: a perfect voltage
// monitor driving IPEX's threshold crossings, atomically-committing JIT
// checkpoints, and a clean harvested-power trace. Real deployments violate
// all three — ADCs quantize and pick up noise, NVM writes tear under a
// collapsing rail, and ambient sources brown out and spike. This package
// models each non-ideality as a seeded injector family:
//
//   - Sensor: an ADC model between the capacitor and the IPEX controllers
//     (quantization, additive Gaussian noise, dropped samples, stuck-at
//     windows). Only IPEX's observations go through it; the backup trigger
//     stays on the dedicated analog comparator a real EHS uses for the
//     die-or-checkpoint decision.
//   - Checkpoint: per-block backup-write failures with detect-and-retry and
//     a counted rollback (full re-walk) when a block exhausts its retries.
//     Correctness is preserved — the walk always reaches a consistent
//     snapshot — while every failed attempt's energy and cycles are charged.
//   - Harvest: per-sample anomalies layered on the replayed power trace —
//     dropouts, spikes, and multi-sample brownout storms — computed as a
//     pure function of the absolute sample index so replay stays exact.
//
// Every random decision comes from internal/rng streams derived from one
// Seed, so the same (seed, config) pair produces the identical fault
// schedule, identical Result, and identical trace events on every run.
//
// The package also defines the Report/Violation types the simulator's
// paranoid invariant checker (nvp.Config.Paranoid) returns in a Result:
// structured diagnostics instead of a silently corrupted sweep.
package fault

import (
	"fmt"
	"math"
)

// Family seed salts: each injector family derives its stream from
// Config.Seed mixed with a distinct constant, so enabling one family never
// perturbs another family's schedule.
const (
	seedSensor     = 0xA11CE5E2504B1e5
	seedCheckpoint = 0xC4EC4901711FA17
	seedHarvest    = 0x4A12E57A2071A1E
)

// SensorConfig models the voltage monitor IPEX reads: an ADC with finite
// resolution, input-referred noise, and sample-level failure modes. The
// zero value is an ideal sensor (no injection).
type SensorConfig struct {
	// ADCBits quantizes readings to 2^bits levels over [0, VRef].
	// 0 disables quantization (ideal resolution).
	ADCBits int
	// VRef is the converter's full-scale voltage; 0 means the system
	// supplies its capacitor's Vmax.
	VRef float64
	// NoiseV is the standard deviation (volts) of additive Gaussian noise
	// applied before quantization. 0 disables it.
	NoiseV float64
	// DropoutProb is the per-sample probability the conversion is lost and
	// the monitor repeats its previous reading.
	DropoutProb float64
	// StuckProb is the per-sample probability the output register freezes
	// at its current value for StuckLen samples.
	StuckProb float64
	// StuckLen is the stuck-at window length in samples (0 means the
	// default, DefaultStuckLen).
	StuckLen int
}

// DefaultStuckLen is the stuck-at window applied when StuckLen is 0.
const DefaultStuckLen = 8

// Active reports whether any sensor non-ideality is configured.
func (c SensorConfig) Active() bool {
	return c.ADCBits > 0 || c.NoiseV > 0 || c.DropoutProb > 0 || c.StuckProb > 0
}

// CheckpointConfig models non-atomic JIT-checkpoint writes: each dirty-block
// backup write can fail (a torn NVM write detected by the write-verify pulse)
// and is retried; a block that exhausts its retries forces a rollback — the
// writer restarts the whole walk so the snapshot it commits is consistent.
// The zero value disables injection.
type CheckpointConfig struct {
	// WriteFailProb is the per-attempt probability a checkpoint block write
	// fails verification.
	WriteFailProb float64
	// MaxRetries bounds consecutive retries of one block before the walk
	// rolls back (0 means DefaultMaxRetries).
	MaxRetries int
	// MaxRollbacks bounds full-walk restarts per outage; beyond it the
	// remaining writes are forced to succeed so the simulation always
	// terminates (0 means DefaultMaxRollbacks). With any WriteFailProb < 1
	// the bound is astronomically unlikely to be reached; it exists so a
	// WriteFailProb of exactly 1 stays a usable worst-case experiment.
	MaxRollbacks int
}

// Default retry/rollback bounds (see CheckpointConfig).
const (
	DefaultMaxRetries   = 3
	DefaultMaxRollbacks = 8
)

// Active reports whether checkpoint-write injection is configured.
func (c CheckpointConfig) Active() bool { return c.WriteFailProb > 0 }

// HarvestConfig models hostile input-energy conditions layered on a power
// trace, per 10 µs sample: dropouts (a sample delivers nothing), spikes
// (a sample is multiplied by SpikeScale), and brownout storms (a run of
// consecutive zeroed samples). The zero value disables injection.
type HarvestConfig struct {
	// DropoutProb zeroes a single sample with this probability.
	DropoutProb float64
	// SpikeProb multiplies a sample by SpikeScale with this probability.
	SpikeProb float64
	// SpikeScale is the spike multiplier (0 means DefaultSpikeScale).
	SpikeScale float64
	// StormProb is the per-sample probability a brownout storm starts; the
	// storm zeroes 1..StormLen consecutive samples.
	StormProb float64
	// StormLen is the maximum storm length in samples (0 means
	// DefaultStormLen; capped at MaxStormLen).
	StormLen int
}

// Storm-length defaults and bound (see HarvestConfig). MaxStormLen bounds
// the per-sample lookback the pure-function evaluation scans.
const (
	DefaultSpikeScale = 4.0
	DefaultStormLen   = 32
	MaxStormLen       = 1024
)

// Active reports whether any harvest anomaly is configured.
func (c HarvestConfig) Active() bool {
	return c.DropoutProb > 0 || c.SpikeProb > 0 || c.StormProb > 0
}

// Config assembles one deterministic fault schedule. The zero value injects
// nothing; a Config with no active family behaves exactly like no Config.
type Config struct {
	// Seed selects the fault schedule. The same (Seed, Config) always
	// reproduces the identical schedule; 0 means DefaultSeed.
	Seed uint64

	Sensor     SensorConfig
	Checkpoint CheckpointConfig
	Harvest    HarvestConfig
}

// DefaultSeed is used when Config.Seed is 0.
const DefaultSeed = 1

// Active reports whether any injector family is configured.
func (c *Config) Active() bool {
	if c == nil {
		return false
	}
	return c.Sensor.Active() || c.Checkpoint.Active() || c.Harvest.Active()
}

// prob validates one probability field.
func prob(name string, p float64) error {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("fault: %s must be in [0,1], got %g", name, p)
	}
	return nil
}

// Validate reports configuration errors. NaN is rejected explicitly
// everywhere: it fails every comparison, so a NaN probability or noise level
// would otherwise slip through range checks and poison the schedule.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	s := c.Sensor
	if s.ADCBits < 0 || s.ADCBits > 24 {
		return fmt.Errorf("fault: sensor ADC bits %d out of [0,24]", s.ADCBits)
	}
	if math.IsNaN(s.VRef) || math.IsInf(s.VRef, 0) || s.VRef < 0 {
		return fmt.Errorf("fault: sensor VRef must be a non-negative finite voltage, got %g", s.VRef)
	}
	if math.IsNaN(s.NoiseV) || math.IsInf(s.NoiseV, 0) || s.NoiseV < 0 {
		return fmt.Errorf("fault: sensor noise must be a non-negative finite voltage, got %g", s.NoiseV)
	}
	if err := prob("sensor dropout probability", s.DropoutProb); err != nil {
		return err
	}
	if err := prob("sensor stuck probability", s.StuckProb); err != nil {
		return err
	}
	if s.StuckLen < 0 {
		return fmt.Errorf("fault: sensor stuck length must be >= 0, got %d", s.StuckLen)
	}
	k := c.Checkpoint
	if err := prob("checkpoint write-failure probability", k.WriteFailProb); err != nil {
		return err
	}
	if k.MaxRetries < 0 {
		return fmt.Errorf("fault: checkpoint max retries must be >= 0, got %d", k.MaxRetries)
	}
	if k.MaxRollbacks < 0 {
		return fmt.Errorf("fault: checkpoint max rollbacks must be >= 0, got %d", k.MaxRollbacks)
	}
	h := c.Harvest
	if err := prob("harvest dropout probability", h.DropoutProb); err != nil {
		return err
	}
	if err := prob("harvest spike probability", h.SpikeProb); err != nil {
		return err
	}
	if err := prob("harvest storm probability", h.StormProb); err != nil {
		return err
	}
	if math.IsNaN(h.SpikeScale) || math.IsInf(h.SpikeScale, 0) || h.SpikeScale < 0 {
		return fmt.Errorf("fault: harvest spike scale must be non-negative and finite, got %g", h.SpikeScale)
	}
	if h.StormLen < 0 || h.StormLen > MaxStormLen {
		return fmt.Errorf("fault: harvest storm length %d out of [0,%d]", h.StormLen, MaxStormLen)
	}
	return nil
}

// seed returns the effective schedule seed.
func (c *Config) seed() uint64 {
	if c.Seed == 0 {
		return DefaultSeed
	}
	return c.Seed
}

// Stats counts the injected faults of one run. A Result carries it (as
// Result.Faults) whenever a Config was active.
type Stats struct {
	// SensorSamples counts monitor reads; Dropouts and Stuck count samples
	// replaced by the previous/frozen reading.
	SensorSamples  uint64
	SensorDropouts uint64
	SensorStuck    uint64

	// CheckpointWriteFailures counts failed backup-write attempts (initial
	// attempts and retries alike); CheckpointRetries counts the re-issued
	// writes; CheckpointRollbacks counts full re-walks of the dirty set;
	// CheckpointDiscarded counts committed block writes a rollback threw
	// away; CheckpointForced counts writes committed by the MaxRollbacks
	// bound.
	CheckpointWriteFailures uint64
	CheckpointRetries       uint64
	CheckpointRollbacks     uint64
	CheckpointDiscarded     uint64
	CheckpointForced        uint64
	// RetryCycles and RetryNJ are the extra backup cost attributable to
	// failed writes — every torn attempt plus every committed write a
	// rollback later discarded (what a fault-free checkpoint would not have
	// spent).
	RetryCycles uint64
	RetryNJ     float64

	// Harvest anomaly counts, per affected 10 µs sample.
	HarvestDropouts uint64
	HarvestSpikes   uint64
	HarvestStorms   uint64
}

// Violation is one failed runtime invariant check.
type Violation struct {
	// Check names the invariant ("energy_balance", "forward_progress", ...).
	Check string
	// Cycle and PowerCycle locate the failure in simulated time.
	Cycle      uint64
	PowerCycle uint64
	// Detail is a human-readable diagnosis with the observed values.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s @cycle=%d pcycle=%d: %s", v.Check, v.Cycle, v.PowerCycle, v.Detail)
}

// Report is the paranoid invariant checker's run-level output.
type Report struct {
	// Checks counts individual invariant evaluations that ran.
	Checks uint64
	// Violations lists every failed check, in occurrence order (capped at
	// MaxViolations so a systematically broken run cannot grow unbounded).
	Violations []Violation
	// Truncated is set when violations beyond MaxViolations were dropped.
	Truncated bool
	// LedgerNJ is the shadow drain ledger's whole-run total, published only
	// when the attribution profiler ran alongside the checker so tests can
	// assert the two ledgers agree bit-for-bit; zero (and omitted from
	// JSON) otherwise.
	LedgerNJ float64 `json:",omitempty"`
}

// MaxViolations bounds Report.Violations.
const MaxViolations = 64

// Clean reports whether every check passed.
func (r *Report) Clean() bool { return r == nil || len(r.Violations) == 0 }

// Add records a violation (respecting the MaxViolations cap).
func (r *Report) Add(check string, cycle, pcycle uint64, format string, args ...any) {
	if len(r.Violations) >= MaxViolations {
		r.Truncated = true
		return
	}
	r.Violations = append(r.Violations, Violation{
		Check:      check,
		Cycle:      cycle,
		PowerCycle: pcycle,
		Detail:     fmt.Sprintf(format, args...),
	})
}

// Summary renders a one-line digest ("clean, 123 checks" or the first
// violation plus a count).
func (r *Report) Summary() string {
	if r == nil {
		return "invariants: not checked"
	}
	if r.Clean() {
		return fmt.Sprintf("invariants: clean (%d checks)", r.Checks)
	}
	return fmt.Sprintf("invariants: %d VIOLATION(S) in %d checks; first: %s",
		len(r.Violations), r.Checks, r.Violations[0])
}
