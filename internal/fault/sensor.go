package fault

import (
	"math"

	"ipex/internal/rng"
	"ipex/internal/trace"
)

// Sensor is the voltage-monitor model between the capacitor and the IPEX
// controllers. Every IPEX observation passes through Read, which applies —
// in acquisition order — additive input noise, dropout/stuck-at sample
// failures, and ADC quantization. The outage comparator (BelowBackup) does
// NOT go through the sensor: the backup trigger is a dedicated analog
// brown-out detector in a real EHS, and keeping it exact also keeps the
// fault model orthogonal to checkpoint correctness.
//
// The draw order per sample is fixed (dropout, stuck, noise) so a schedule
// depends only on (seed, config, sample count) — never on the voltages
// observed, which keeps sensor schedules stable across unrelated simulator
// changes that shift analogue values but not sample counts.
type Sensor struct {
	cfg   SensorConfig
	rng   *rng.RNG
	tr    *trace.Tracer
	stats *Stats

	// last is the previously reported reading, repeated on a dropout.
	last float64
	// stuckLeft counts remaining samples of an active stuck-at window; the
	// frozen value is held in last.
	stuckLeft int
	// lsb is the quantization step (VRef / 2^bits), 0 when ideal.
	lsb  float64
	vref float64
}

// NewSensor builds the sensor for one run. vmax supplies the ADC reference
// when the config leaves VRef zero. The tracer may be nil.
func NewSensor(cfg SensorConfig, seed uint64, vmax float64, tr *trace.Tracer, stats *Stats) *Sensor {
	s := &Sensor{
		cfg:   cfg,
		rng:   rng.New(seed ^ seedSensor),
		tr:    tr,
		stats: stats,
		vref:  cfg.VRef,
	}
	if s.vref <= 0 {
		s.vref = vmax
	}
	if cfg.ADCBits > 0 {
		s.lsb = s.vref / float64(uint64(1)<<uint(cfg.ADCBits))
	}
	if s.cfg.StuckLen <= 0 {
		s.cfg.StuckLen = DefaultStuckLen
	}
	return s
}

// Read converts the true capacitor voltage into what the monitor reports.
func (s *Sensor) Read(v float64) float64 {
	s.stats.SensorSamples++

	// Sample-failure modes first: they replace the conversion entirely.
	if s.stuckLeft > 0 {
		s.stuckLeft--
		s.stats.SensorStuck++
		return s.last
	}
	if s.cfg.DropoutProb > 0 && s.rng.Float64() < s.cfg.DropoutProb {
		s.stats.SensorDropouts++
		s.tr.Emit(trace.Event{Kind: trace.KindFaultSensor, Detail: "dropout", Value: s.last})
		return s.last
	}
	if s.cfg.StuckProb > 0 && s.rng.Float64() < s.cfg.StuckProb {
		// The register freezes at the value it holds now; the window counts
		// this sample too.
		s.stuckLeft = s.cfg.StuckLen - 1
		s.stats.SensorStuck++
		s.tr.Emit(trace.Event{Kind: trace.KindFaultSensor, Detail: "stuck",
			N: int64(s.cfg.StuckLen), Value: s.last})
		return s.last
	}

	if s.cfg.NoiseV > 0 {
		v += s.cfg.NoiseV * s.rng.Norm()
	}
	if s.lsb > 0 {
		// Mid-rise quantization clamped to the converter's input range.
		v = math.Min(math.Max(v, 0), s.vref)
		v = math.Floor(v/s.lsb) * s.lsb
	} else if v < 0 {
		v = 0
	}
	s.last = v
	return v
}
