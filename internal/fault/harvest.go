package fault

import (
	"ipex/internal/rng"
	"ipex/internal/trace"
)

// Harvester perturbs the replayed power trace with ambient-source anomalies:
// single-sample dropouts, spikes, and multi-sample brownout storms.
//
// Unlike the other injectors, its schedule is a pure function of the
// absolute sample index: the simulator queries the same 10 µs window more
// than once (the outage-recharge loop and the post-reboot harvest both read
// the window an outage straddles), so a sequential stream would skew on
// every re-query. Each sample derives a private generator from (seed,
// index), and storm coverage is resolved by scanning back over the
// preceding maxStormLen indices — bounded work, and the same answer no
// matter how often or in what order windows are evaluated.
type Harvester struct {
	cfg   HarvestConfig
	seed  uint64
	tr    *trace.Tracer
	stats *Stats

	scale    float64 // effective spike multiplier
	stormMax int     // effective maximum storm length

	// One-entry memo: the simulator's queries are monotone in time except
	// for the immediate re-query of the current window, so a single entry
	// gives exact re-query behaviour AND exact once-per-sample stats.
	memoIdx uint64
	memoOK  bool
	memoPow float64
}

// NewHarvester builds the harvest-anomaly injector. The tracer may be nil.
func NewHarvester(cfg HarvestConfig, seed uint64, tr *trace.Tracer, stats *Stats) *Harvester {
	h := &Harvester{
		cfg:      cfg,
		seed:     seed ^ seedHarvest,
		tr:       tr,
		stats:    stats,
		scale:    cfg.SpikeScale,
		stormMax: cfg.StormLen,
	}
	if h.scale <= 0 {
		h.scale = DefaultSpikeScale
	}
	if h.stormMax <= 0 {
		h.stormMax = DefaultStormLen
	}
	if h.stormMax > MaxStormLen {
		h.stormMax = MaxStormLen
	}
	return h
}

// sampleRNG derives the private generator of one absolute sample index.
func (h *Harvester) sampleRNG(idx uint64) *rng.RNG {
	return rng.New(h.seed + idx*0x9e3779b97f4a7c15)
}

// stormAt reports whether index idx falls inside a storm, including storms
// that started at an earlier index and are still running. The per-sample
// draw order is fixed: stormStart, stormLen, dropout, spike.
func (h *Harvester) stormAt(idx uint64) bool {
	if h.cfg.StormProb <= 0 {
		return false
	}
	back := uint64(h.stormMax)
	if back > idx {
		back = idx
	}
	for d := uint64(0); d <= back; d++ {
		r := h.sampleRNG(idx - d)
		if r.Float64() >= h.cfg.StormProb {
			continue
		}
		length := uint64(r.Intn(h.stormMax) + 1) // 1..stormMax samples
		if d < length {
			return true
		}
	}
	return false
}

// Power maps the clean trace power of absolute sample idx to the perturbed
// value the capacitor actually receives. Stats and trace events are emitted
// once per distinct index (re-queries of the current window are memoized).
func (h *Harvester) Power(idx uint64, clean float64) float64 {
	if h.memoOK && h.memoIdx == idx {
		return h.memoPow
	}

	p := clean
	switch {
	case h.stormAt(idx):
		p = 0
		h.stats.HarvestStorms++
		h.tr.Emit(trace.Event{Kind: trace.KindFaultHarvest, Detail: "storm", Block: idx})
	default:
		r := h.sampleRNG(idx)
		// Skip this index's storm draws so dropout/spike draws stay at
		// fixed stream positions whether or not storms are configured on
		// top of them.
		if h.cfg.StormProb > 0 {
			if r.Float64() < h.cfg.StormProb {
				r.Intn(h.stormMax)
			}
		}
		if h.cfg.DropoutProb > 0 && r.Float64() < h.cfg.DropoutProb {
			p = 0
			h.stats.HarvestDropouts++
			h.tr.Emit(trace.Event{Kind: trace.KindFaultHarvest, Detail: "dropout", Block: idx})
		} else if h.cfg.SpikeProb > 0 && r.Float64() < h.cfg.SpikeProb {
			p = clean * h.scale
			h.stats.HarvestSpikes++
			h.tr.Emit(trace.Event{Kind: trace.KindFaultHarvest, Detail: "spike",
				Block: idx, Value: p})
		}
	}

	h.memoIdx, h.memoOK, h.memoPow = idx, true, p
	return p
}
