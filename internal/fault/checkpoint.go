package fault

import (
	"ipex/internal/rng"
	"ipex/internal/trace"
)

// Checkpointer decides the fate of each backup-write attempt during an
// outage checkpoint. The NVP detects a torn write via the NVM write-verify
// pulse and retries the block; a block that fails MaxRetries consecutive
// attempts forces a rollback — the writer restarts the whole dirty-set walk
// so that the snapshot it finally commits is consistent. Every attempt,
// successful or not, costs full NVM write energy and cycles (the simulator
// charges them; this type only draws outcomes and counts).
type Checkpointer struct {
	cfg   CheckpointConfig
	rng   *rng.RNG
	tr    *trace.Tracer
	stats *Stats

	maxRetries   int
	maxRollbacks int
}

// NewCheckpointer builds the checkpoint-fault injector. The tracer may be
// nil.
func NewCheckpointer(cfg CheckpointConfig, seed uint64, tr *trace.Tracer, stats *Stats) *Checkpointer {
	c := &Checkpointer{
		cfg:          cfg,
		rng:          rng.New(seed ^ seedCheckpoint),
		tr:           tr,
		stats:        stats,
		maxRetries:   cfg.MaxRetries,
		maxRollbacks: cfg.MaxRollbacks,
	}
	if c.maxRetries <= 0 {
		c.maxRetries = DefaultMaxRetries
	}
	if c.maxRollbacks <= 0 {
		c.maxRollbacks = DefaultMaxRollbacks
	}
	return c
}

// MaxRetries returns the effective per-block consecutive-retry bound.
func (c *Checkpointer) MaxRetries() int { return c.maxRetries }

// MaxRollbacks returns the effective per-outage rollback bound.
func (c *Checkpointer) MaxRollbacks() int { return c.maxRollbacks }

// WriteFails draws one backup-write attempt; true means the write tore and
// must be retried. forced marks attempts past the MaxRollbacks bound, which
// always succeed (the bound keeps WriteFailProb=1 terminating).
func (c *Checkpointer) WriteFails(forced bool) bool {
	if forced {
		c.stats.CheckpointForced++
		return false
	}
	if c.rng.Float64() >= c.cfg.WriteFailProb {
		return false
	}
	c.stats.CheckpointWriteFailures++
	return true
}

// NoteRetry records one re-issued block write; nj is the attempt's energy
// (event payload only — the walk accounts wasted cost via Stats directly,
// since only it knows which attempts end up discarded).
func (c *Checkpointer) NoteRetry(nj float64) {
	c.stats.CheckpointRetries++
	c.tr.Emit(trace.Event{Kind: trace.KindFaultCkpt, Detail: "retry", Value: nj})
}

// NoteRollback records one full re-walk of the dirty set; n is the number
// of blocks whose successful writes are being discarded.
func (c *Checkpointer) NoteRollback(n int) {
	c.stats.CheckpointRollbacks++
	c.stats.CheckpointDiscarded += uint64(n)
	c.tr.Emit(trace.Event{Kind: trace.KindFaultCkpt, Detail: "rollback", N: int64(n)})
}
