package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestConfigActive(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Active() {
		t.Error("nil config reports active")
	}
	if (&Config{}).Active() {
		t.Error("zero config reports active")
	}
	if (&Config{Seed: 42}).Active() {
		t.Error("seed alone must not activate injection")
	}
	cases := []Config{
		{Sensor: SensorConfig{ADCBits: 8}},
		{Sensor: SensorConfig{NoiseV: 0.005}},
		{Sensor: SensorConfig{DropoutProb: 0.01}},
		{Sensor: SensorConfig{StuckProb: 0.01}},
		{Checkpoint: CheckpointConfig{WriteFailProb: 0.1}},
		{Harvest: HarvestConfig{DropoutProb: 0.1}},
		{Harvest: HarvestConfig{SpikeProb: 0.1}},
		{Harvest: HarvestConfig{StormProb: 0.1}},
	}
	for i, c := range cases {
		if !c.Active() {
			t.Errorf("case %d: config should be active: %+v", i, c)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{"zero", Config{}, ""},
		{"full valid", Config{
			Seed:       7,
			Sensor:     SensorConfig{ADCBits: 8, VRef: 3.3, NoiseV: 0.01, DropoutProb: 0.02, StuckProb: 0.001, StuckLen: 4},
			Checkpoint: CheckpointConfig{WriteFailProb: 0.5, MaxRetries: 2, MaxRollbacks: 4},
			Harvest:    HarvestConfig{DropoutProb: 0.1, SpikeProb: 0.1, SpikeScale: 2, StormProb: 0.01, StormLen: 16},
		}, ""},
		{"adc bits high", Config{Sensor: SensorConfig{ADCBits: 25}}, "ADC bits"},
		{"adc bits negative", Config{Sensor: SensorConfig{ADCBits: -1}}, "ADC bits"},
		{"vref nan", Config{Sensor: SensorConfig{VRef: nan}}, "VRef"},
		{"vref inf", Config{Sensor: SensorConfig{VRef: math.Inf(1)}}, "VRef"},
		{"noise negative", Config{Sensor: SensorConfig{NoiseV: -0.1}}, "noise"},
		{"noise nan", Config{Sensor: SensorConfig{NoiseV: nan}}, "noise"},
		{"sensor dropout > 1", Config{Sensor: SensorConfig{DropoutProb: 1.5}}, "dropout"},
		{"sensor stuck nan", Config{Sensor: SensorConfig{StuckProb: nan}}, "stuck"},
		{"stuck len negative", Config{Sensor: SensorConfig{StuckLen: -1}}, "stuck length"},
		{"ckpt prob negative", Config{Checkpoint: CheckpointConfig{WriteFailProb: -0.1}}, "write-failure"},
		{"ckpt retries negative", Config{Checkpoint: CheckpointConfig{MaxRetries: -1}}, "retries"},
		{"ckpt rollbacks negative", Config{Checkpoint: CheckpointConfig{MaxRollbacks: -2}}, "rollbacks"},
		{"harvest dropout nan", Config{Harvest: HarvestConfig{DropoutProb: nan}}, "dropout"},
		{"harvest spike > 1", Config{Harvest: HarvestConfig{SpikeProb: 2}}, "spike"},
		{"spike scale negative", Config{Harvest: HarvestConfig{SpikeScale: -1}}, "spike scale"},
		{"spike scale inf", Config{Harvest: HarvestConfig{SpikeScale: math.Inf(1)}}, "spike scale"},
		{"storm prob > 1", Config{Harvest: HarvestConfig{StormProb: 1.01}}, "storm"},
		{"storm len too long", Config{Harvest: HarvestConfig{StormLen: MaxStormLen + 1}}, "storm length"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error containing %q, got nil", tc.name, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Errorf("nil config must validate: %v", err)
	}
}

// An ideal sensor (zero config) must pass voltages through unchanged.
func TestSensorIdealIsIdentity(t *testing.T) {
	var st Stats
	s := NewSensor(SensorConfig{}, 1, 3.0, nil, &st)
	for _, v := range []float64{0, 0.5, 1.234567, 2.999} {
		if got := s.Read(v); got != v {
			t.Errorf("ideal sensor altered %g -> %g", v, got)
		}
	}
	if st.SensorSamples != 4 || st.SensorDropouts != 0 || st.SensorStuck != 0 {
		t.Errorf("ideal sensor stats wrong: %+v", st)
	}
}

// Quantization must floor to exact LSB multiples over [0, VRef].
func TestSensorQuantization(t *testing.T) {
	var st Stats
	s := NewSensor(SensorConfig{ADCBits: 3, VRef: 8.0}, 1, 0, nil, &st)
	// LSB = 8 / 2^3 = 1.0 volts.
	cases := []struct{ in, want float64 }{
		{0, 0}, {0.99, 0}, {1.0, 1.0}, {2.5, 2.0}, {7.999, 7.0},
		{8.0, 8.0}, {9.5, 8.0}, {-0.5, 0},
	}
	for _, tc := range cases {
		if got := s.Read(tc.in); got != tc.want {
			t.Errorf("quantize(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

// A dropout repeats the previous reading; stuck-at freezes it for the
// configured window.
func TestSensorDropoutAndStuck(t *testing.T) {
	var st Stats
	s := NewSensor(SensorConfig{DropoutProb: 1}, 1, 3.0, nil, &st)
	if got := s.Read(2.5); got != 0 {
		t.Errorf("first dropout should repeat initial 0, got %g", got)
	}
	if st.SensorDropouts != 1 {
		t.Errorf("dropout not counted: %+v", st)
	}

	st = Stats{}
	s = NewSensor(SensorConfig{StuckProb: 1, StuckLen: 3}, 1, 3.0, nil, &st)
	s.last = 1.5 // pretend a prior good conversion
	for i := 0; i < 5; i++ {
		if got := s.Read(2.5); got != 1.5 {
			t.Errorf("sample %d: stuck sensor reported %g, want frozen 1.5", i, got)
		}
	}
	if st.SensorStuck != 5 {
		t.Errorf("stuck samples = %d, want 5", st.SensorStuck)
	}
}

// The same (seed, config) must reproduce the identical reading sequence.
func TestSensorDeterminism(t *testing.T) {
	cfg := SensorConfig{ADCBits: 8, NoiseV: 0.02, DropoutProb: 0.05, StuckProb: 0.01}
	run := func() []float64 {
		var st Stats
		s := NewSensor(cfg, 99, 3.0, nil, &st)
		out := make([]float64, 0, 500)
		v := 2.8
		for i := 0; i < 500; i++ {
			out = append(out, s.Read(v))
			v -= 0.004
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("sensor readings differ across identically-seeded runs")
	}
}

// Harvest perturbation must be a pure function of the sample index: any
// query order, including repeats, yields the same power.
func TestHarvestPurity(t *testing.T) {
	cfg := HarvestConfig{DropoutProb: 0.2, SpikeProb: 0.1, SpikeScale: 3, StormProb: 0.02, StormLen: 8}
	fresh := func() *Harvester {
		var st Stats
		return NewHarvester(cfg, 7, nil, &st)
	}
	const n = 400
	forward := make([]float64, n)
	h := fresh()
	for i := uint64(0); i < n; i++ {
		forward[i] = h.Power(i, 1.0)
	}
	// Reverse order on a fresh instance.
	h2 := fresh()
	for i := n; i > 0; i-- {
		idx := uint64(i - 1)
		if got := h2.Power(idx, 1.0); got != forward[idx] {
			t.Fatalf("idx %d: reverse-order power %g != forward %g", idx, got, forward[idx])
		}
	}
	// Immediate re-query (the simulator's outage-recharge pattern).
	h3 := fresh()
	for i := uint64(0); i < n; i++ {
		a := h3.Power(i, 1.0)
		b := h3.Power(i, 1.0)
		if a != b {
			t.Fatalf("idx %d: re-query changed power %g -> %g", i, a, b)
		}
		if a != forward[i] {
			t.Fatalf("idx %d: re-query run diverged", i)
		}
	}
}

// A storm must zero a consecutive run of samples.
func TestHarvestStormContiguity(t *testing.T) {
	var st Stats
	h := NewHarvester(HarvestConfig{StormProb: 0.01, StormLen: 16}, 3, nil, &st)
	const n = 20000
	zeroRuns := 0
	run := 0
	for i := uint64(0); i < n; i++ {
		if h.Power(i, 1.0) == 0 {
			run++
		} else if run > 0 {
			zeroRuns++
			if run > 2*16 { // overlapping storms can chain, but sanity-bound it
				t.Fatalf("storm run of %d samples exceeds plausible chain", run)
			}
			run = 0
		}
	}
	if zeroRuns == 0 || st.HarvestStorms == 0 {
		t.Fatalf("no storms observed in %d samples (runs=%d stats=%+v)", n, zeroRuns, st)
	}
}

// Disabled anomalies must never alter power.
func TestHarvestDisabledIsIdentity(t *testing.T) {
	var st Stats
	h := NewHarvester(HarvestConfig{}, 7, nil, &st)
	for i := uint64(0); i < 100; i++ {
		if got := h.Power(i, 0.123); got != 0.123 {
			t.Fatalf("idx %d: disabled harvester altered power to %g", i, got)
		}
	}
	if st.HarvestDropouts+st.HarvestSpikes+st.HarvestStorms != 0 {
		t.Fatalf("disabled harvester counted faults: %+v", st)
	}
}

// WriteFailProb=1 must fail every unforced attempt and force past the bound.
func TestCheckpointerBounds(t *testing.T) {
	var st Stats
	c := NewCheckpointer(CheckpointConfig{WriteFailProb: 1}, 1, nil, &st)
	if c.MaxRollbacks() != DefaultMaxRollbacks {
		t.Errorf("default rollback bound = %d, want %d", c.MaxRollbacks(), DefaultMaxRollbacks)
	}
	for i := 0; i < 10; i++ {
		if !c.WriteFails(false) {
			t.Fatal("WriteFailProb=1 produced a success")
		}
	}
	if c.WriteFails(true) {
		t.Fatal("forced attempt failed")
	}
	if st.CheckpointWriteFailures != 10 || st.CheckpointForced != 1 {
		t.Errorf("stats wrong: %+v", st)
	}

	var st0 Stats
	c0 := NewCheckpointer(CheckpointConfig{WriteFailProb: 0}, 1, nil, &st0)
	for i := 0; i < 10; i++ {
		if c0.WriteFails(false) {
			t.Fatal("WriteFailProb=0 produced a failure")
		}
	}
}

func TestReport(t *testing.T) {
	var nilRep *Report
	if !nilRep.Clean() {
		t.Error("nil report must be clean")
	}
	if got := nilRep.Summary(); !strings.Contains(got, "not checked") {
		t.Errorf("nil summary = %q", got)
	}
	r := &Report{Checks: 5}
	if !r.Clean() {
		t.Error("empty report must be clean")
	}
	r.Add("energy_balance", 100, 2, "leak of %g nJ", 3.5)
	if r.Clean() {
		t.Error("report with violation reports clean")
	}
	if got := r.Summary(); !strings.Contains(got, "energy_balance") || !strings.Contains(got, "3.5") {
		t.Errorf("summary = %q", got)
	}
	for i := 0; i < MaxViolations+10; i++ {
		r.Add("x", 0, 0, "v%d", i)
	}
	if len(r.Violations) != MaxViolations || !r.Truncated {
		t.Errorf("cap not enforced: len=%d truncated=%v", len(r.Violations), r.Truncated)
	}
}
