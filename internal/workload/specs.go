package workload

// specs parameterises the 20 MediaBench/MiBench stand-ins. The comments on
// each entry state which published property of the app the parameters
// target; counts are instructions of the synthetic kernel (default scale).
//
// Magnitudes, for reference while tuning: the ICache/DCache are 2 kB with
// 16 B blocks and the ReRAM miss penalty is 11 cycles. A hot loop plus its
// callees exceeding ~2 kB produces instruction conflict misses. A streaming
// PC with stride s misses once per 16/s of its executions; a random pattern
// over ≫2 kB misses almost always; table/stack patterns of ≲2 kB mostly
// hit. Every app gets a cache-resident "stack" background pattern — the
// register-spill and locals traffic that dominates real dynamic loads.
var specs = map[string]spec{
	// ADPCM decode: tiny branchy inner loop over sequential sample
	// streams; very low ICache pressure, light sequential data.
	"adpcmd": {
		name: "adpcmd", insts: 220_000, memRatio: 0.22, writeRatio: 0.30,
		code: codeSpec{loopBytes: 832, funcs: 2, funcBytes: 384, callEvery: 90, callLen: 30, jumpProb: 0.41, innerBytes: 128, innerIters: 10},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 96 << 10, strideBytes: 4, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patStride2D, regionBytes: 64 << 10, strideBytes: 4, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patTable, regionBytes: 768, strideBytes: 4, weight: 1.0}, // stack/locals
		},
	},
	// ADPCM encode: like decode with a slightly larger loop and more
	// writes (output stream).
	"adpcme": {
		name: "adpcme", insts: 240_000, memRatio: 0.23, writeRatio: 0.40,
		code: codeSpec{loopBytes: 896, funcs: 2, funcBytes: 384, callEvery: 85, callLen: 30, jumpProb: 0.41, innerBytes: 128, innerIters: 10},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 96 << 10, strideBytes: 4, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patStride2D, regionBytes: 64 << 10, strideBytes: 2, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patTable, regionBytes: 768, strideBytes: 4, weight: 1.0},
		},
	},
	// basicmath: math-function kernels; moderate code with helper calls,
	// small data (mostly stack traffic), low DCache pressure.
	"basicm": {
		name: "basicm", insts: 260_000, memRatio: 0.16, writeRatio: 0.25,
		code: codeSpec{loopBytes: 1984, funcs: 4, funcBytes: 768, callEvery: 70, callLen: 45, jumpProb: 0.36, innerBytes: 128, innerIters: 8},
		data: []dataSpec{
			{kind: patSeq, regionBytes: 32 << 10, strideBytes: 4, pcs: 1},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 8, weight: 1.0},
		},
	},
	// FFT: butterfly passes — short sequential runs (complex pairs)
	// separated by power-of-two row jumps; highly stride-predictable.
	"fft": {
		name: "fft", insts: 300_000, memRatio: 0.30, writeRatio: 0.35,
		code: codeSpec{loopBytes: 1536, funcs: 2, funcBytes: 512, callEvery: 120, callLen: 30, jumpProb: 0.29, innerBytes: 192, innerIters: 12},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 64 << 10, strideBytes: 8, rowBytes: 512, runBytes: 64, pcs: 1},
			{kind: patStride2D, regionBytes: 64 << 10, strideBytes: 4, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 8, weight: 1.0},
		},
	},
	// G.721 decode: small cache-resident loop and lookup table; almost no
	// misses, hence few prefetch triggers (the paper calls out its
	// marginal IPEX gains).
	"g721d": {
		name: "g721d", insts: 280_000, memRatio: 0.15, writeRatio: 0.20,
		code: codeSpec{loopBytes: 1088, funcs: 1, funcBytes: 512, callEvery: 200, callLen: 20, jumpProb: 0.29, innerBytes: 96, innerIters: 8},
		data: []dataSpec{
			{kind: patSeq, regionBytes: 8 << 10, strideBytes: 2, pcs: 1},
			{kind: patTable, regionBytes: 768, strideBytes: 4, weight: 1.0},
		},
	},
	// G.721 encode: as decode.
	"g721e": {
		name: "g721e", insts: 300_000, memRatio: 0.15, writeRatio: 0.25,
		code: codeSpec{loopBytes: 1216, funcs: 1, funcBytes: 512, callEvery: 190, callLen: 22, jumpProb: 0.29, innerBytes: 96, innerIters: 8},
		data: []dataSpec{
			{kind: patSeq, regionBytes: 8 << 10, strideBytes: 2, pcs: 1},
			{kind: patTable, regionBytes: 768, strideBytes: 4, weight: 1.0},
		},
	},
	// GSM decode: frame-oriented streaming with a mid-size code footprint.
	"gsmd": {
		name: "gsmd", insts: 260_000, memRatio: 0.22, writeRatio: 0.30,
		code: codeSpec{loopBytes: 1856, funcs: 4, funcBytes: 512, callEvery: 80, callLen: 35, jumpProb: 0.36, innerBytes: 160, innerIters: 10},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 96 << 10, strideBytes: 8, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 4, weight: 1.0},
		},
	},
	// GSM encode: larger code and more streaming than decode; lots of
	// sequential prefetch opportunity (Fig. 12 shows a big reduction).
	"gsme": {
		name: "gsme", insts: 280_000, memRatio: 0.25, writeRatio: 0.35,
		code: codeSpec{loopBytes: 2176, funcs: 5, funcBytes: 512, callEvery: 70, callLen: 40, jumpProb: 0.36, innerBytes: 192, innerIters: 10},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 128 << 10, strideBytes: 8, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patStride2D, regionBytes: 32 << 10, strideBytes: 4, rowBytes: 256, runBytes: 64, pcs: 1},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 4, weight: 1.0},
		},
	},
	// Inverse FFT: fft with a different pass geometry, same character.
	"ifft": {
		name: "ifft", insts: 300_000, memRatio: 0.30, writeRatio: 0.35,
		code: codeSpec{loopBytes: 1536, funcs: 2, funcBytes: 512, callEvery: 120, callLen: 30, jumpProb: 0.29, innerBytes: 192, innerIters: 12},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 64 << 10, strideBytes: 8, rowBytes: 1024, runBytes: 64, pcs: 1},
			{kind: patStride2D, regionBytes: 64 << 10, strideBytes: 4, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 8, weight: 1.0},
		},
	},
	// JPEG decode: 8x8-block walks over the image plus quantization
	// tables; big code footprint (Huffman + IDCT + color).
	"jpegd": {
		name: "jpegd", insts: 320_000, memRatio: 0.28, writeRatio: 0.30,
		code: codeSpec{loopBytes: 2496, funcs: 6, funcBytes: 768, callEvery: 60, callLen: 50, jumpProb: 0.41, innerBytes: 192, innerIters: 9},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 128 << 10, strideBytes: 4, rowBytes: 1024, runBytes: 32, pcs: 1},
			{kind: patStride2D, regionBytes: 64 << 10, strideBytes: 2, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patTable, regionBytes: 2 << 10, strideBytes: 4, weight: 1.0},
		},
	},
	// Patricia: trie lookups — pointer chasing over a medium working set;
	// irregular, prefetch-hostile data.
	"patricia": {
		name: "patricia", insts: 260_000, memRatio: 0.30, writeRatio: 0.15,
		code: codeSpec{loopBytes: 1216, funcs: 3, funcBytes: 512, callEvery: 75, callLen: 35, jumpProb: 0.49, innerBytes: 128, innerIters: 8},
		data: []dataSpec{
			{kind: patSeq, regionBytes: 16 << 10, strideBytes: 2, pcs: 1},
			{kind: patRandom, regionBytes: 256 << 10, strideBytes: 16, weight: 0.40},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 4, weight: 0.60},
		},
	},
	// Pegwit decrypt: elliptic-curve bignum ops over scattered heap data;
	// the paper's worst DCache-stall app (>60%).
	"pegwitd": {
		name: "pegwitd", insts: 280_000, memRatio: 0.40, writeRatio: 0.30,
		code: codeSpec{loopBytes: 1536, funcs: 3, funcBytes: 512, callEvery: 90, callLen: 35, jumpProb: 0.36, innerBytes: 160, innerIters: 9},
		data: []dataSpec{
			{kind: patSeq, regionBytes: 32 << 10, strideBytes: 4, pcs: 1},
			{kind: patRandom, regionBytes: 384 << 10, strideBytes: 16, weight: 0.75},
			{kind: patTable, regionBytes: 768, strideBytes: 4, weight: 0.25},
		},
	},
	// Pegwit encrypt: as decrypt, slightly larger working set.
	"pegwite": {
		name: "pegwite", insts: 300_000, memRatio: 0.42, writeRatio: 0.35,
		code: codeSpec{loopBytes: 1536, funcs: 3, funcBytes: 512, callEvery: 90, callLen: 35, jumpProb: 0.36, innerBytes: 160, innerIters: 9},
		data: []dataSpec{
			{kind: patSeq, regionBytes: 32 << 10, strideBytes: 4, pcs: 1},
			{kind: patRandom, regionBytes: 512 << 10, strideBytes: 16, weight: 0.78},
			{kind: patTable, regionBytes: 768, strideBytes: 4, weight: 0.22},
		},
	},
	// Quicksort: partition sweeps — sequential scans over the array plus
	// random pivot probing.
	"qsort": {
		name: "qsort", insts: 280_000, memRatio: 0.30, writeRatio: 0.40,
		code: codeSpec{loopBytes: 1536, funcs: 2, funcBytes: 512, callEvery: 100, callLen: 30, jumpProb: 0.41, innerBytes: 128, innerIters: 10},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 128 << 10, strideBytes: 8, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patStride2D, regionBytes: 128 << 10, strideBytes: 4, rowBytes: 4096, runBytes: 32, pcs: 1},
			{kind: patRandom, regionBytes: 128 << 10, strideBytes: 8, weight: 0.30},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 4, weight: 0.70},
		},
	},
	// Rijndael decrypt: S-box lookups (slightly bigger than the cache)
	// plus heavy sequential block streaming (Fig. 12/13 call out its large
	// prefetch and traffic reductions).
	"rijndaeld": {
		name: "rijndaeld", insts: 300_000, memRatio: 0.32, writeRatio: 0.35,
		code: codeSpec{loopBytes: 1856, funcs: 3, funcBytes: 512, callEvery: 110, callLen: 30, jumpProb: 0.29, innerBytes: 224, innerIters: 12},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 160 << 10, strideBytes: 8, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patStride2D, regionBytes: 64 << 10, strideBytes: 8, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patRandom, regionBytes: 4 << 10, strideBytes: 4, weight: 0.35}, // S-boxes: 2x the cache
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 4, weight: 0.65},
		},
	},
	// Rijndael encrypt: as decrypt.
	"rijndaele": {
		name: "rijndaele", insts: 300_000, memRatio: 0.32, writeRatio: 0.35,
		code: codeSpec{loopBytes: 1856, funcs: 3, funcBytes: 512, callEvery: 105, callLen: 30, jumpProb: 0.29, innerBytes: 224, innerIters: 12},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 160 << 10, strideBytes: 8, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patStride2D, regionBytes: 64 << 10, strideBytes: 8, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patRandom, regionBytes: 4 << 10, strideBytes: 4, weight: 0.35},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 4, weight: 0.65},
		},
	},
	// stringsearch: sequential scans through text with a small skip
	// table; tiny loop, streaming data.
	"strings": {
		name: "strings", insts: 240_000, memRatio: 0.28, writeRatio: 0.10,
		code: codeSpec{loopBytes: 576, funcs: 2, funcBytes: 384, callEvery: 130, callLen: 25, jumpProb: 0.41, innerBytes: 96, innerIters: 10},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 96 << 10, strideBytes: 4, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patTable, regionBytes: 768, strideBytes: 4, weight: 1.0},
		},
	},
	// SUSAN corners: 2-D image sweep with a small neighbourhood window.
	"susanc": {
		name: "susanc", insts: 320_000, memRatio: 0.30, writeRatio: 0.20,
		code: codeSpec{loopBytes: 1536, funcs: 3, funcBytes: 512, callEvery: 95, callLen: 35, jumpProb: 0.36, innerBytes: 192, innerIters: 11},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 192 << 10, strideBytes: 2, rowBytes: 768, runBytes: 48, pcs: 1},
			{kind: patStride2D, regionBytes: 96 << 10, strideBytes: 2, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 4, weight: 1.0},
		},
	},
	// SUSAN edges: as corners over a larger image.
	"susane": {
		name: "susane", insts: 340_000, memRatio: 0.30, writeRatio: 0.25,
		code: codeSpec{loopBytes: 1600, funcs: 3, funcBytes: 512, callEvery: 95, callLen: 35, jumpProb: 0.36, innerBytes: 192, innerIters: 11},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 256 << 10, strideBytes: 2, rowBytes: 1024, runBytes: 48, pcs: 1},
			{kind: patStride2D, regionBytes: 128 << 10, strideBytes: 2, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 4, weight: 1.0},
		},
	},
	// unepic: wavelet image decompression — mixed sequential output and
	// irregular coefficient fetches, larger code.
	"unepic": {
		name: "unepic", insts: 300_000, memRatio: 0.26, writeRatio: 0.35,
		code: codeSpec{loopBytes: 2176, funcs: 5, funcBytes: 640, callEvery: 65, callLen: 45, jumpProb: 0.41, innerBytes: 160, innerIters: 9},
		data: []dataSpec{
			{kind: patStride2D, regionBytes: 96 << 10, strideBytes: 2, rowBytes: 64, runBytes: 48, pcs: 1},
			{kind: patStride2D, regionBytes: 64 << 10, strideBytes: 4, rowBytes: 512, runBytes: 32, pcs: 1},
			{kind: patRandom, regionBytes: 64 << 10, strideBytes: 16, weight: 0.30},
			{kind: patTable, regionBytes: 1 << 10, strideBytes: 4, weight: 0.70},
		},
	},
}
