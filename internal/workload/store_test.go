package workload

import (
	"sync"
	"testing"
)

// TestStoreReplayMatchesGeneration checks that a replay cursor yields the
// exact sequence the underlying generator produces, for every app.
func TestStoreReplayMatchesGeneration(t *testing.T) {
	st := NewStore()
	for _, name := range Names() {
		gen := MustNew(name, 0.02)
		rep, err := st.Get(name, 0.02)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Name() != gen.Name() || rep.Len() != gen.Len() {
			t.Fatalf("%s: replay identity mismatch: %s/%d vs %s/%d",
				name, rep.Name(), rep.Len(), gen.Name(), gen.Len())
		}
		for i := 0; ; i++ {
			want, okW := gen.Next()
			got, okG := rep.Next()
			if okW != okG {
				t.Fatalf("%s: stream length diverged at %d", name, i)
			}
			if !okW {
				break
			}
			if want != got {
				t.Fatalf("%s: access %d diverged: %+v vs %+v", name, i, got, want)
			}
		}
	}
}

// TestStoreScaleNormalization mirrors New: non-positive scales mean 1.0 and
// must share the memoized entry instead of fragmenting the key space.
func TestStoreScaleNormalization(t *testing.T) {
	st := NewStore()
	if _, err := st.Get("fft", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("fft", -3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("fft", 1); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Errorf("store holds %d entries, want 1 (scale<=0 should alias 1.0)", st.Len())
	}
}

func TestStoreUnknownApp(t *testing.T) {
	st := NewStore()
	if _, err := st.Get("no-such-app", 1); err == nil {
		t.Error("Get accepted an unknown app")
	}
	// A failed generation must not poison the store for valid keys.
	if _, err := st.Get("fft", 1); err != nil {
		t.Errorf("valid Get after failure: %v", err)
	}
}

// TestStoreConcurrentGet hammers one store from many goroutines (run under
// -race in CI): generation must happen once per key, every cursor must see
// the identical stream, and concurrent replay must be data-race-free.
func TestStoreConcurrentGet(t *testing.T) {
	st := NewStore()
	apps := []string{"fft", "gsme", "pegwitd", "jpegd"}
	ref := make(map[string][]Access)
	for _, app := range apps {
		g := MustNew(app, 0.01)
		var acc []Access
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			acc = append(acc, a)
		}
		ref[app] = acc
	}

	const workers = 16
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			app := apps[w%len(apps)]
			g, err := st.Get(app, 0.01)
			if err != nil {
				errc <- err
				return
			}
			want := ref[app]
			for i := 0; ; i++ {
				a, ok := g.Next()
				if !ok {
					if i != len(want) {
						t.Errorf("%s: replay ended at %d, want %d", app, i, len(want))
					}
					return
				}
				if a != want[i] {
					t.Errorf("%s: concurrent replay diverged at %d", app, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if st.Len() != len(apps) {
		t.Errorf("store holds %d entries, want %d", st.Len(), len(apps))
	}

	st.Evict()
	if st.Len() != 0 {
		t.Errorf("Evict left %d entries", st.Len())
	}
}
