package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := MustNew("fft", 0.02)
	var buf bytes.Buffer
	if err := WriteTrace(orig, &buf); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Name() != "fft" || replay.Len() != orig.Len() {
		t.Fatalf("header mismatch: %s/%d", replay.Name(), replay.Len())
	}
	orig.Reset()
	for i := 0; ; i++ {
		want, okW := orig.Next()
		got, okG := replay.Next()
		if okW != okG {
			t.Fatalf("stream lengths differ at %d", i)
		}
		if !okW {
			break
		}
		if want != got {
			t.Fatalf("access %d differs: %+v vs %+v", i, want, got)
		}
	}
}

func TestTraceReplayResets(t *testing.T) {
	g := FromAccesses("x", []Access{{PC: 1}, {PC: 2, HasData: true, DataAddr: 7, Write: true}})
	a1, _ := g.Next()
	g.Next()
	if _, ok := g.Next(); ok {
		t.Fatal("stream too long")
	}
	g.Reset()
	b1, ok := g.Next()
	if !ok || a1 != b1 {
		t.Fatal("reset replay differs")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a trace\n100\n",
		"#ipextrace v1 fft\n", // missing count
		"#ipextrace v1 fft abc\n",
		"#ipextrace v1 fft 1\nzz R 10\n",
		"#ipextrace v1 fft 1\n100 X 10\n",
		"#ipextrace v1 fft 1\n100 R\n",
		"#ipextrace v1 fft 2\n100\n", // count mismatch
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestReadTraceSkipsComments(t *testing.T) {
	in := "#ipextrace v1 demo 2\n# a comment\n100\n\n104 W 2000\n"
	g, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("len = %d", g.Len())
	}
	g.Next()
	a, _ := g.Next()
	if !a.Write || a.DataAddr != 0x2000 {
		t.Errorf("second access = %+v", a)
	}
}

func TestTraceFormatIsStable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTrace(FromAccesses("t", []Access{
		{PC: 0x10},
		{PC: 0x14, HasData: true, DataAddr: 0x2000},
		{PC: 0x18, HasData: true, DataAddr: 0x2004, Write: true},
	}), &buf)
	if err != nil {
		t.Fatal(err)
	}
	want := "#ipextrace v1 t 3\n10\n14 R 2000\n18 W 2004\n"
	if buf.String() != want {
		t.Errorf("format drifted:\n%q\nwant\n%q", buf.String(), want)
	}
}
