// Package workload provides deterministic synthetic access-stream
// generators standing in for the 20 MediaBench/MiBench applications the
// paper evaluates (§6).
//
// The real benchmarks cannot be compiled and traced here (they need an ARM
// v7-M cross toolchain and the gem5 trace flow), but IPEX and the NVP
// simulator only observe each program's *address stream*: the instruction
// fetch sequence and the data reference sequence, with their locality,
// stride structure, and footprint. Each generator reproduces exactly those
// properties for its app, parameterised to match the published texture of
// the paper's figures:
//
//   - instruction accesses outnumber data accesses roughly 4:1 on average
//     (§6.2),
//   - pegwitd/pegwite have dominant DCache stall time (Fig. 2, >60%),
//   - g721d/g721e trigger few prefetches (small, cache-resident loops),
//   - rijndael*/gsme are rich in sequential/streaming data that prefetches
//     well (Fig. 12),
//   - fft/ifft/susan*/jpegd have regular strided (2-D) patterns, while
//     patricia/pegwit* are pointer-chasing and irregular.
//
// The program model mirrors real compiled code:
//
//   - The instruction stream walks a hot loop of basic blocks with
//     occasional taken branches that skip ahead (so next-line instruction
//     prefetching mispredicts at realistic rates), plus periodic calls
//     into colder helper functions.
//   - A small number of *streaming PCs* — fixed load/store slots in the
//     loop — each own a private data lane they walk with a constant stride
//     (or a 2-D run/row pattern), the way a load inside a loop streams
//     through its array. This is what PC-indexed prefetchers (stride, GHB)
//     train on.
//   - The remaining memory slots perform background accesses: stack and
//     lookup-table references that mostly hit the cache, or irregular
//     pointer-chasing reads that mostly miss, per app.
//
// Streams are exactly reproducible: the same app name and scale always
// produce the identical sequence, which the paper's fair-comparison
// methodology requires.
package workload

import (
	"fmt"
	"math"
	"sort"

	"ipex/internal/rng"
)

// Access is one committed instruction: an instruction fetch at PC plus an
// optional data reference.
type Access struct {
	PC       uint64
	DataAddr uint64
	HasData  bool
	Write    bool
}

// Generator produces a deterministic instruction stream.
type Generator interface {
	// Name returns the benchmark name (e.g. "fft").
	Name() string
	// Len returns the total number of instructions in the stream.
	Len() int
	// Next returns the next instruction, or ok=false at end of stream.
	Next() (a Access, ok bool)
	// Reset restarts the stream from the beginning; the replay is
	// identical to the original sequence.
	Reset()
}

// patKind selects a data-reference pattern.
type patKind int

const (
	// patSeq: each bound streaming PC walks its private lane sequentially
	// with a fixed stride — file/buffer processing.
	patSeq patKind = iota
	// patStride2D: short sequential runs (runBytes at strideBytes step)
	// separated by rowBytes jumps, per lane — image kernels, FFT
	// butterflies, block transforms.
	patStride2D
	// patRandom: uniformly random addresses in the region — pointer
	// chasing, hash/trie lookups (background; no PC binding needed).
	patRandom
	// patTable: a small lookup table / stack region that (mostly) fits in
	// the cache (background).
	patTable
)

// isStream reports whether the pattern needs dedicated streaming PCs.
func (k patKind) isStream() bool { return k == patSeq || k == patStride2D }

// dataSpec is one data-reference pattern.
type dataSpec struct {
	kind        patKind
	regionBytes uint64
	strideBytes uint64
	rowBytes    uint64 // patStride2D: spacing between runs
	runBytes    uint64 // patStride2D: sequential bytes per run
	// pcs is the number of dedicated streaming PCs (stream patterns);
	// weight is the share of background memory slots (background
	// patterns).
	pcs    int
	weight float64
}

// codeSpec describes the instruction footprint: a hot loop of basic blocks
// plus a set of colder functions called periodically. Instructions are 4
// bytes.
type codeSpec struct {
	loopBytes uint64
	funcs     int
	funcBytes uint64
	callEvery int
	callLen   int
	// bbBytes is the basic-block size; at each block end the stream takes
	// a forward jump of 1..jumpMaxBBs blocks with probability jumpProb.
	bbBytes    uint64
	jumpProb   float64
	jumpMaxBBs int
	// innerBytes/innerIters model loop nesting: an inner kernel of
	// innerBytes (placed halfway through the loop body) re-executes
	// innerIters times per outer lap. Streaming PCs live in the inner
	// kernel, which is what makes stream traffic a realistic share of the
	// dynamic access mix. Zero innerBytes disables nesting.
	innerBytes uint64
	innerIters int
}

// spec is the full parameter set of one app.
type spec struct {
	name       string
	insts      int
	memRatio   float64 // fraction of static instruction slots that access memory
	writeRatio float64 // fraction of memory slots that are stores
	code       codeSpec
	data       []dataSpec
}

// Address-space layout (well inside the smallest 2 MB main memory the
// paper sweeps in Fig. 20).
const (
	codeBase = 0x0001_0000
	dataBase = 0x0010_0000
	instLen  = 4
)

// laneState is the cursor of one streaming lane.
type laneState struct {
	cursor uint64 // patSeq: offset in lane
	rowPos uint64 // patStride2D: bytes consumed of the current run
	row    uint64 // patStride2D: current row start offset in lane
}

// binding maps a memory PC slot to its pattern (and lane for streams).
type binding struct {
	pat  int16
	lane int16
	wr   bool
}

// gen is the engine interpreting a spec.
type gen struct {
	spec spec
	seed uint64

	bindings map[uint64]binding
	bases    []uint64 // pattern base addresses
	laneSz   []uint64 // per-pattern lane size (streams)

	r        *rng.RNG
	produced int

	// instruction-side state
	loopPC     uint64
	inCall     int
	callPC     uint64
	callEnd    uint64
	sinceCall  int
	innerCount int // inner-kernel repetitions completed this lap

	// data-side state: lanes[pat][lane]
	lanes [][]laneState
}

// New returns the generator for the named app. scale multiplies the app's
// default instruction count (scale <= 0 means 1.0); tests use small scales,
// the experiment harness uses 1.0.
func New(name string, scale float64) (Generator, error) {
	s, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown app %q", name)
	}
	// NaN/Inf sail through both the "<= 0 means 1.0" default and the int
	// conversion below (int(NaN) is platform-defined), so a poisoned scale
	// would silently produce a nonsense instruction count.
	if math.IsNaN(scale) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("workload: scale must be finite, got %g", scale)
	}
	if scale <= 0 {
		scale = 1
	}
	s.insts = int(float64(s.insts) * scale)
	if s.insts < 1 {
		s.insts = 1
	}
	if s.code.bbBytes == 0 {
		s.code.bbBytes = 48
	}
	if s.code.jumpMaxBBs == 0 {
		s.code.jumpMaxBBs = 2
	}
	g := &gen{spec: s, seed: hashName(name)}
	g.layout()
	g.Reset()
	return g, nil
}

// MustNew is New for app names known to be valid.
func MustNew(name string, scale float64) Generator {
	g, err := New(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}

// Names returns the 20 app names in alphabetical order (the order the
// paper's figures list them).
func Names() []string {
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func hashName(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// hashPC gives each static instruction slot a stable pseudo-random value
// in [0,1), mixed with the app seed.
func (g *gen) hashPC(pc, salt uint64) float64 {
	x := pc*0x9e3779b97f4a7c15 ^ g.seed ^ salt*0xbf58476d1ce4e5b9
	x ^= x >> 29
	x *= 0x94d049bb133111eb
	x ^= x >> 32
	return float64(x>>11) / float64(1<<53)
}

// layout assigns data-region bases, classifies every static instruction
// slot, dedicates streaming PCs, and distributes the remaining memory
// slots over the background patterns.
func (g *gen) layout() {
	s := &g.spec
	g.bases = make([]uint64, len(s.data))
	g.laneSz = make([]uint64, len(s.data))
	base := uint64(dataBase)
	for i, d := range s.data {
		g.bases[i] = base
		base += d.regionBytes
		base = (base + 0xfff) &^ uint64(0xfff) // 4 kB align regions apart
		if d.kind.isStream() {
			n := d.pcs
			if n < 1 {
				n = 1
			}
			g.laneSz[i] = d.regionBytes / uint64(n)
		}
	}

	// Enumerate static slots: loop then functions.
	var slots []uint64
	for off := uint64(0); off < s.code.loopBytes; off += instLen {
		slots = append(slots, codeBase+off)
	}
	funcBase := codeBase + s.code.loopBytes
	for f := 0; f < s.code.funcs; f++ {
		for off := uint64(0); off < s.code.funcBytes; off += instLen {
			slots = append(slots, funcBase+uint64(f)*s.code.funcBytes+off)
		}
	}

	// Memory classification. Inner-kernel memory slots are kept separate:
	// streaming PCs are drawn from them so streams execute innerIters
	// times per lap, as real hot loops do.
	innerLo, innerHi := g.innerRange()
	var loopMem, innerMem, funcMem []uint64
	for _, pc := range slots {
		if g.hashPC(pc, 1) < s.memRatio {
			switch {
			case pc >= funcBase:
				funcMem = append(funcMem, pc)
			case pc >= innerLo && pc < innerHi:
				innerMem = append(innerMem, pc)
			default:
				loopMem = append(loopMem, pc)
			}
		}
	}

	g.bindings = make(map[uint64]binding, len(loopMem)+len(innerMem)+len(funcMem))

	// Dedicate streaming PCs: evenly spaced inner-kernel memory slots
	// (falling back to outer loop slots if nesting is disabled).
	needed := 0
	for _, d := range s.data {
		if d.kind.isStream() {
			needed += max(1, d.pcs)
		}
	}
	streamSrc := innerMem
	if len(streamSrc) == 0 {
		streamSrc = loopMem
	}
	streamPCs := pickSpaced(streamSrc, needed)
	si := 0
	for pi, d := range s.data {
		if !d.kind.isStream() {
			continue
		}
		n := max(1, d.pcs)
		for l := 0; l < n && si < len(streamPCs); l++ {
			pc := streamPCs[si]
			si++
			g.bindings[pc] = binding{
				pat:  int16(pi),
				lane: int16(l),
				wr:   g.hashPC(pc, 2) < s.writeRatio,
			}
		}
	}

	// Background patterns share the remaining memory slots by weight.
	var bgIdx []int
	var bgCum []float64
	cum := 0.0
	for pi, d := range s.data {
		if d.kind.isStream() {
			continue
		}
		cum += d.weight
		bgIdx = append(bgIdx, pi)
		bgCum = append(bgCum, cum)
	}
	assignBG := func(pc uint64) {
		if _, taken := g.bindings[pc]; taken || len(bgIdx) == 0 {
			return
		}
		x := g.hashPC(pc, 3) * cum
		k := 0
		for k < len(bgCum)-1 && x >= bgCum[k] {
			k++
		}
		g.bindings[pc] = binding{
			pat:  int16(bgIdx[k]),
			lane: 0,
			wr:   g.hashPC(pc, 2) < s.writeRatio,
		}
	}
	for _, pc := range loopMem {
		assignBG(pc)
	}
	for _, pc := range innerMem {
		assignBG(pc)
	}
	for _, pc := range funcMem {
		assignBG(pc)
	}
}

// innerRange returns the PC bounds of the inner kernel, or (0,0) when
// nesting is disabled.
func (g *gen) innerRange() (lo, hi uint64) {
	c := g.spec.code
	if c.innerBytes == 0 || c.innerIters <= 1 || c.innerBytes >= c.loopBytes {
		return 0, 0
	}
	start := (c.loopBytes / 2) &^ (instLen - 1)
	if start+c.innerBytes > c.loopBytes {
		start = c.loopBytes - c.innerBytes
	}
	return codeBase + start, codeBase + start + c.innerBytes
}

// pickSpaced selects n elements of xs at even spacing.
func pickSpaced(xs []uint64, n int) []uint64 {
	if n <= 0 || len(xs) == 0 {
		return nil
	}
	if n >= len(xs) {
		return append([]uint64(nil), xs...)
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, xs[i*len(xs)/n])
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Name implements Generator.
func (g *gen) Name() string { return g.spec.name }

// Len implements Generator.
func (g *gen) Len() int { return g.spec.insts }

// Reset implements Generator.
func (g *gen) Reset() {
	g.r = rng.New(g.seed)
	g.produced = 0
	g.loopPC = 0
	g.inCall = 0
	g.callPC = 0
	g.sinceCall = 0
	g.innerCount = 0
	g.lanes = make([][]laneState, len(g.spec.data))
	for i, d := range g.spec.data {
		n := 1
		if d.kind.isStream() {
			n = max(1, d.pcs)
		}
		g.lanes[i] = make([]laneState, n)
	}
}

// Next implements Generator.
func (g *gen) Next() (Access, bool) {
	if g.produced >= g.spec.insts {
		return Access{}, false
	}
	g.produced++

	var a Access
	a.PC = g.nextPC()

	if b, ok := g.bindings[a.PC]; ok {
		a.HasData = true
		a.Write = b.wr
		a.DataAddr = g.nextData(b)
	}
	return a, true
}

// nextPC advances the instruction cursor: through the current function if
// a call is active, otherwise through the loop's basic blocks with
// occasional forward jumps and periodic calls.
func (g *gen) nextPC() uint64 {
	c := g.spec.code
	if g.inCall > 0 {
		g.inCall--
		pc := g.callPC
		g.callPC += instLen
		if g.callPC >= g.callEnd { // function body wraps (internal loop)
			g.callPC = g.callEnd - c.funcBytes
		}
		return pc
	}
	g.sinceCall++
	if c.funcs > 0 && c.callEvery > 0 && g.sinceCall >= c.callEvery {
		g.sinceCall = 0
		g.inCall = c.callLen
		fn := uint64(g.r.Intn(c.funcs))
		start := codeBase + c.loopBytes + fn*c.funcBytes
		// Calls enter the function at a random 128 B-aligned offset
		// (dispatch tables, early-exit paths): only callLen instructions
		// from the entry execute, so code prefetched beyond the return
		// point is frequently never fetched — the realistic wrong-path
		// waste of instruction prefetching.
		if c.funcBytes >= 256 {
			slots := int(c.funcBytes / 128)
			start += uint64(g.r.Intn(slots)) * 128
		}
		g.callPC = start
		g.callEnd = codeBase + c.loopBytes + (fn+1)*c.funcBytes
	}
	pc := codeBase + g.loopPC
	g.loopPC += instLen

	// Inner-kernel back edge: repeat the kernel innerIters times per lap.
	if lo, hi := g.innerRange(); hi != 0 && codeBase+g.loopPC == hi {
		g.innerCount++
		if g.innerCount < c.innerIters {
			g.loopPC = lo - codeBase
			return pc
		}
		g.innerCount = 0
	}

	inInner := false
	if lo, hi := g.innerRange(); hi != 0 {
		p := codeBase + g.loopPC
		inInner = p >= lo && p < hi
	}
	if g.loopPC >= c.loopBytes {
		g.loopPC = 0
	} else if !inInner && g.loopPC%c.bbBytes == 0 && c.jumpProb > 0 && g.r.Float64() < c.jumpProb {
		// Taken branch: skip 1..jumpMaxBBs basic blocks forward (never
		// into or across the inner kernel, whose back edge is separate).
		skip := uint64(1+g.r.Intn(c.jumpMaxBBs)) * c.bbBytes
		target := g.loopPC + skip
		if lo, hi := g.innerRange(); hi != 0 {
			tp := codeBase + target
			if tp > lo && tp <= hi {
				target = hi - codeBase // land just past the kernel
			}
		}
		g.loopPC = target
		for g.loopPC >= c.loopBytes {
			g.loopPC -= c.loopBytes
		}
	}
	return pc
}

// nextData advances the bound pattern lane and returns the address.
func (g *gen) nextData(b binding) uint64 {
	d := g.spec.data[b.pat]
	st := &g.lanes[b.pat][b.lane]
	laneBase := g.bases[b.pat] + uint64(b.lane)*g.laneSz[b.pat]
	switch d.kind {
	case patSeq:
		addr := laneBase + st.cursor
		st.cursor += d.strideBytes
		if st.cursor >= g.laneSz[b.pat] {
			st.cursor = 0
		}
		return addr
	case patStride2D:
		addr := laneBase + st.row + st.rowPos
		st.rowPos += d.strideBytes
		if st.rowPos >= d.runBytes {
			st.rowPos = 0
			st.row += d.rowBytes
			if st.row+d.runBytes > g.laneSz[b.pat] {
				st.row = 0
			}
		}
		return addr
	case patRandom:
		grain := d.strideBytes
		if grain == 0 {
			grain = 16
		}
		blocks := d.regionBytes / grain
		if blocks == 0 {
			blocks = 1
		}
		return g.bases[b.pat] + uint64(g.r.Intn(int(blocks)))*grain
	case patTable:
		grain := d.strideBytes
		if grain == 0 {
			grain = 4
		}
		entries := d.regionBytes / grain
		if entries == 0 {
			entries = 1
		}
		return g.bases[b.pat] + uint64(g.r.Intn(int(entries)))*grain
	}
	return g.bases[b.pat]
}
