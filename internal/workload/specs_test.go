package workload

import "testing"

func TestSpecsWellFormed(t *testing.T) {
	for name, s := range specs {
		if s.name != name {
			t.Errorf("%s: name field %q mismatched", name, s.name)
		}
		if s.insts < 100_000 || s.insts > 1_000_000 {
			t.Errorf("%s: implausible instruction count %d", name, s.insts)
		}
		if s.memRatio <= 0 || s.memRatio > 0.6 {
			t.Errorf("%s: memRatio %v out of range", name, s.memRatio)
		}
		if s.writeRatio < 0 || s.writeRatio > 1 {
			t.Errorf("%s: writeRatio %v out of range", name, s.writeRatio)
		}
		if s.code.loopBytes == 0 || s.code.loopBytes%instLen != 0 {
			t.Errorf("%s: loopBytes %d invalid", name, s.code.loopBytes)
		}
		if s.code.funcBytes%instLen != 0 {
			t.Errorf("%s: funcBytes %d not instruction-aligned", name, s.code.funcBytes)
		}
		if len(s.data) == 0 {
			t.Errorf("%s: no data patterns", name)
		}
		hasBackground := false
		for i, d := range s.data {
			if d.regionBytes == 0 {
				t.Errorf("%s: pattern %d has zero region", name, i)
			}
			if d.kind.isStream() {
				if d.pcs < 1 {
					t.Errorf("%s: stream pattern %d needs pcs >= 1", name, i)
				}
				if d.strideBytes == 0 {
					t.Errorf("%s: stream pattern %d has zero stride", name, i)
				}
				if d.kind == patStride2D && (d.runBytes == 0 || d.rowBytes == 0) {
					t.Errorf("%s: 2D pattern %d missing run/row geometry", name, i)
				}
			} else {
				hasBackground = true
				if d.weight <= 0 {
					t.Errorf("%s: background pattern %d needs positive weight", name, i)
				}
			}
		}
		if !hasBackground {
			t.Errorf("%s: every app needs a background (stack) pattern", name)
		}
	}
}

func TestStreamBudget(t *testing.T) {
	// The 4-entry prefetch buffer supports at most ~2-3 concurrent
	// streams; specs exceeding that would thrash it (see package doc).
	for name, s := range specs {
		streams := 0
		for _, d := range s.data {
			if d.kind.isStream() {
				streams += d.pcs
			}
		}
		if streams > 3 {
			t.Errorf("%s: %d streaming PCs exceed the prefetch-buffer budget", name, streams)
		}
	}
}

func TestPaperTextureTargets(t *testing.T) {
	// Spot-check the per-app characteristics the paper's figures rely on.
	if specs["pegwitd"].memRatio < specs["adpcmd"].memRatio {
		t.Error("pegwitd must be more memory-intensive than adpcmd (Fig. 2)")
	}
	if specs["g721d"].code.loopBytes > 1280 {
		t.Error("g721d must have a small, mostly cache-resident loop")
	}
	if specs["jpegd"].code.loopBytes < specs["g721d"].code.loopBytes {
		t.Error("jpegd must have a larger code footprint than g721d")
	}
	// pegwit* working sets must exceed the 2kB cache by orders of
	// magnitude (their D-stall dominates, Fig. 2).
	for _, app := range []string{"pegwitd", "pegwite"} {
		big := false
		for _, d := range specs[app].data {
			if d.kind == patRandom && d.regionBytes >= 256<<10 {
				big = true
			}
		}
		if !big {
			t.Errorf("%s: missing the large irregular working set", app)
		}
	}
}
