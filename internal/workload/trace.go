package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements access-trace files: any Generator's stream can be
// recorded to a text file and replayed later, exactly like the paper's
// gem5 trace flow. The format is line-oriented and greppable:
//
//	#ipextrace v1 <name> <instructions>
//	<pc-hex>                     — instruction without a data access
//	<pc-hex> R <addr-hex>        — load
//	<pc-hex> W <addr-hex>        — store
//
// Traces recorded from real hardware or another simulator can be fed to
// the NVP simulator through ReadTrace as long as they follow this format.

// traceMagic is the header prefix of a v1 trace.
const traceMagic = "#ipextrace v1"

// WriteTrace records g's complete stream to w. The generator is consumed;
// Reset it afterwards if it is needed again.
func WriteTrace(g Generator, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "%s %s %d\n", traceMagic, g.Name(), g.Len()); err != nil {
		return err
	}
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		var err error
		switch {
		case !a.HasData:
			_, err = fmt.Fprintf(bw, "%x\n", a.PC)
		case a.Write:
			_, err = fmt.Fprintf(bw, "%x W %x\n", a.PC, a.DataAddr)
		default:
			_, err = fmt.Fprintf(bw, "%x R %x\n", a.PC, a.DataAddr)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace file and returns a replayable generator holding
// the whole stream in memory.
func ReadTrace(r io.Reader) (Generator, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("workload: reading trace header: %w", err)
		}
		return nil, fmt.Errorf("workload: empty trace file")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, traceMagic) {
		return nil, fmt.Errorf("workload: not an ipextrace v1 file (header %q)", header)
	}
	fields := strings.Fields(header[len(traceMagic):])
	if len(fields) != 2 {
		return nil, fmt.Errorf("workload: malformed trace header %q", header)
	}
	name := fields[0]
	declared, err := strconv.Atoi(fields[1])
	if err != nil || declared < 0 {
		return nil, fmt.Errorf("workload: bad instruction count in header %q", header)
	}

	accesses := make([]Access, 0, declared)
	line := 1
	for sc.Scan() {
		line++
		txt := sc.Text()
		if len(txt) == 0 || txt[0] == '#' {
			continue
		}
		a, err := parseTraceLine(txt)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		accesses = append(accesses, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if declared != 0 && len(accesses) != declared {
		return nil, fmt.Errorf("workload: header declares %d instructions, file has %d", declared, len(accesses))
	}
	return FromAccesses(name, accesses), nil
}

func parseTraceLine(txt string) (Access, error) {
	var a Access
	fields := strings.Fields(txt)
	switch len(fields) {
	case 1:
		pc, err := strconv.ParseUint(fields[0], 16, 64)
		if err != nil {
			return a, err
		}
		a.PC = pc
	case 3:
		pc, err := strconv.ParseUint(fields[0], 16, 64)
		if err != nil {
			return a, err
		}
		addr, err := strconv.ParseUint(fields[2], 16, 64)
		if err != nil {
			return a, err
		}
		switch fields[1] {
		case "R":
		case "W":
			a.Write = true
		default:
			return a, fmt.Errorf("bad access kind %q", fields[1])
		}
		a.PC = pc
		a.HasData = true
		a.DataAddr = addr
	default:
		return a, fmt.Errorf("malformed line %q", txt)
	}
	return a, nil
}

// FromAccesses wraps a pre-built access slice as a replayable Generator —
// the in-memory form of a trace file, also handy for tests and custom
// tooling. The returned generator is a *Cursor over a fresh Stream.
func FromAccesses(name string, accesses []Access) Generator {
	return NewStream(name, accesses).Cursor()
}

// Stream is an immutable, fully materialized access trace: one shared
// read-only arena per (app, scale) that any number of concurrent replays
// cursor over without copying. The Store hands out the same Stream to every
// sweep worker, so the hot trace pages are shared across the whole process.
//
// A Stream must never be mutated after construction; every Cursor and every
// direct Accesses() reader depends on that.
type Stream struct {
	name     string
	accesses []Access
}

// NewStream wraps a pre-built access slice as an immutable trace arena. The
// caller must not modify the slice afterwards.
func NewStream(name string, accesses []Access) *Stream {
	return &Stream{name: name, accesses: accesses}
}

// Name returns the workload name the stream replays.
func (s *Stream) Name() string { return s.name }

// Len returns the instruction count.
func (s *Stream) Len() int { return len(s.accesses) }

// Accesses returns the shared backing slice. Read-only: callers iterate it
// directly (the simulator's fast loops do) but must never write to it.
func (s *Stream) Accesses() []Access { return s.accesses }

// Cursor returns a fresh replay cursor positioned at the start.
func (s *Stream) Cursor() *Cursor {
	c := &Cursor{}
	c.Bind(s)
	return c
}

// Cursor is a replay position over a Stream. It implements Generator, and —
// unlike a generator built per run — it is a plain rebindable value: the
// simulator's arena keeps one Cursor per worker and Binds it to the next
// cell's Stream, so steady-state runs allocate nothing for their workload.
// Each Cursor has its own position; concurrent replays need distinct
// Cursors but share the Stream.
type Cursor struct {
	stream *Stream
	pos    int
}

// Bind points the cursor at a stream and rewinds it to the start.
func (c *Cursor) Bind(s *Stream) {
	c.stream = s
	c.pos = 0
}

// Stream returns the bound stream (nil for an unbound cursor).
func (c *Cursor) Stream() *Stream { return c.stream }

// Pos returns how many accesses have been consumed.
func (c *Cursor) Pos() int { return c.pos }

// SetPos moves the replay position (clamped to [0, Len]); the simulator's
// fast loops iterate the stream slice directly and re-synchronize the
// cursor with it on exit.
func (c *Cursor) SetPos(n int) {
	if n < 0 {
		n = 0
	}
	if max := c.stream.Len(); n > max {
		n = max
	}
	c.pos = n
}

// Name implements Generator.
func (c *Cursor) Name() string { return c.stream.name }

// Len implements Generator.
func (c *Cursor) Len() int { return len(c.stream.accesses) }

// Next implements Generator.
func (c *Cursor) Next() (Access, bool) {
	acc := c.stream.accesses
	if c.pos >= len(acc) {
		return Access{}, false
	}
	a := acc[c.pos]
	c.pos++
	return a, true
}

// Reset implements Generator.
func (c *Cursor) Reset() { c.pos = 0 }
