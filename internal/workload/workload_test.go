package workload

import (
	"testing"
	"testing/quick"
)

func TestNamesHasAll20Apps(t *testing.T) {
	names := Names()
	if len(names) != 20 {
		t.Fatalf("got %d apps, want 20: %v", len(names), names)
	}
	want := []string{
		"adpcmd", "adpcme", "basicm", "fft", "g721d", "g721e", "gsmd",
		"gsme", "ifft", "jpegd", "patricia", "pegwitd", "pegwite", "qsort",
		"rijndaeld", "rijndaele", "strings", "susanc", "susane", "unepic",
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestNewUnknownApp(t *testing.T) {
	if _, err := New("doom", 1); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestLenAndTermination(t *testing.T) {
	g := MustNew("fft", 0.01)
	n := 0
	for {
		_, ok := g.Next()
		if !ok {
			break
		}
		n++
	}
	if n != g.Len() {
		t.Errorf("produced %d, Len() = %d", n, g.Len())
	}
	// After exhaustion Next keeps returning false.
	if _, ok := g.Next(); ok {
		t.Error("Next returned true after end of stream")
	}
}

func TestScale(t *testing.T) {
	full := MustNew("fft", 1)
	half := MustNew("fft", 0.5)
	if half.Len() >= full.Len() {
		t.Errorf("scale 0.5 len %d !< full len %d", half.Len(), full.Len())
	}
	def := MustNew("fft", 0)
	if def.Len() != full.Len() {
		t.Error("scale <= 0 should mean 1.0")
	}
}

func TestDeterministicReplay(t *testing.T) {
	for _, app := range []string{"fft", "pegwitd", "g721d"} {
		a := MustNew(app, 0.05)
		b := MustNew(app, 0.05)
		for i := 0; ; i++ {
			x, okA := a.Next()
			y, okB := b.Next()
			if okA != okB {
				t.Fatalf("%s: streams ended at different points", app)
			}
			if !okA {
				break
			}
			if x != y {
				t.Fatalf("%s: access %d differs: %+v vs %+v", app, i, x, y)
			}
		}
	}
}

func TestResetReplaysIdentically(t *testing.T) {
	g := MustNew("qsort", 0.05)
	var first []Access
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		first = append(first, a)
	}
	g.Reset()
	for i := range first {
		a, ok := g.Next()
		if !ok {
			t.Fatalf("replay ended early at %d", i)
		}
		if a != first[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a, first[i])
		}
	}
}

func TestAddressBounds(t *testing.T) {
	// All addresses must stay inside the smallest main memory the paper
	// sweeps (2 MB, Fig. 20).
	for _, app := range Names() {
		g := MustNew(app, 0.05)
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			if a.PC >= 2<<20 || (a.HasData && a.DataAddr >= 2<<20) {
				t.Fatalf("%s: address out of 2MB bound: %+v", app, a)
			}
			if a.PC < codeBase {
				t.Fatalf("%s: PC below code base: %#x", app, a.PC)
			}
			if a.HasData && a.DataAddr < dataBase {
				t.Fatalf("%s: data address below data base: %#x", app, a.DataAddr)
			}
		}
	}
}

func TestInstructionToDataRatio(t *testing.T) {
	// §6.2: instruction accesses outnumber data accesses roughly 4:1 on
	// average across the suite.
	totalInsts, totalData := 0, 0
	for _, app := range Names() {
		g := MustNew(app, 0.05)
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			totalInsts++
			if a.HasData {
				totalData++
			}
		}
	}
	ratio := float64(totalInsts) / float64(totalData)
	if ratio < 3.0 || ratio > 5.5 {
		t.Errorf("I:D access ratio = %.2f, want ≈4", ratio)
	}
}

func TestMemorySlotsAreStaticProperties(t *testing.T) {
	// A PC that accessed memory once must always access memory (and with
	// the same store/load direction), as in compiled code.
	g := MustNew("gsme", 0.05)
	type slot struct {
		hasData bool
		write   bool
	}
	seen := map[uint64]slot{}
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		if prev, ok := seen[a.PC]; ok {
			if prev.hasData != a.HasData || (a.HasData && prev.write != a.Write) {
				t.Fatalf("PC %#x changed its memory behavior", a.PC)
			}
		} else {
			seen[a.PC] = slot{a.HasData, a.Write}
		}
	}
}

func TestStreamingPCsHaveConstantStride(t *testing.T) {
	// Each streaming PC must expose a constant per-execution stride to
	// the prefetchers (modulo lane wraparound).
	for _, app := range []string{"gsme", "rijndaeld", "fft"} {
		g := MustNew(app, 0.1).(*gen)
		lastAddr := map[uint64]uint64{}
		strides := map[uint64]map[int64]int{}
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			if !a.HasData {
				continue
			}
			b, bound := g.bindings[a.PC]
			if !bound || !g.spec.data[b.pat].kind.isStream() || g.spec.data[b.pat].kind != patSeq {
				continue
			}
			if prev, ok := lastAddr[a.PC]; ok {
				d := int64(a.DataAddr) - int64(prev)
				if strides[a.PC] == nil {
					strides[a.PC] = map[int64]int{}
				}
				strides[a.PC][d]++
			}
			lastAddr[a.PC] = a.DataAddr
		}
		for pc, hist := range strides {
			total, dominant := 0, 0
			for _, n := range hist {
				total += n
				if n > dominant {
					dominant = n
				}
			}
			if total > 20 && float64(dominant)/float64(total) < 0.95 {
				t.Errorf("%s: stream PC %#x stride not constant: %v", app, pc, hist)
			}
		}
	}
}

func TestWorkloadPropertiesQuick(t *testing.T) {
	// Any app/scale combination yields a valid, in-bounds stream.
	names := Names()
	f := func(appIdx uint8, scaleRaw uint8) bool {
		app := names[int(appIdx)%len(names)]
		scale := 0.002 + float64(scaleRaw%50)/1000
		g, err := New(app, scale)
		if err != nil {
			return false
		}
		n := 0
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			n++
			if a.PC == 0 {
				return false
			}
			if a.Write && !a.HasData {
				return false
			}
		}
		return n == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew("doom", 1)
}

func TestCodeAndDataRegionsDisjoint(t *testing.T) {
	// Instruction fetches and data references must live in disjoint
	// address ranges: overlap would let the DCache serve instruction
	// blocks and corrupt the per-side statistics.
	for _, app := range Names() {
		g := MustNew(app, 0.02)
		maxPC, minData := uint64(0), uint64(1<<63)
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			if a.PC > maxPC {
				maxPC = a.PC
			}
			if a.HasData && a.DataAddr < minData {
				minData = a.DataAddr
			}
		}
		if maxPC >= minData {
			t.Errorf("%s: code (max %#x) overlaps data (min %#x)", app, maxPC, minData)
		}
	}
}

func TestInnerKernelConcentratesExecution(t *testing.T) {
	// The inner kernel must execute more often per PC than the outer loop
	// (the loop-nesting model streaming PCs rely on).
	g := MustNew("gsme", 0.1).(*gen)
	lo, hi := g.innerRange()
	if hi == 0 {
		t.Skip("app has no inner kernel")
	}
	counts := map[uint64]int{}
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		counts[a.PC]++
	}
	innerTotal, innerN, outerTotal, outerN := 0, 0, 0, 0
	for pc, n := range counts {
		if pc >= lo && pc < hi {
			innerTotal += n
			innerN++
		} else if pc < lo || pc >= hi {
			outerTotal += n
			outerN++
		}
	}
	if innerN == 0 || outerN == 0 {
		t.Fatal("classification failed")
	}
	innerMean := float64(innerTotal) / float64(innerN)
	outerMean := float64(outerTotal) / float64(outerN)
	if innerMean < 2*outerMean {
		t.Errorf("inner kernel PCs execute %.1fx the outer mean, want >= 2x",
			innerMean/outerMean)
	}
}
