package workload

import "sync"

// Store memoizes fully generated access streams keyed by (app, scale).
//
// The synthetic generators are deterministic, so every simulation of the
// same (app, scale) pair consumes the identical sequence; regenerating it
// per configuration (as every experiment sweep used to) pays the full
// per-instruction generation cost — hash lookups, RNG draws, PC-walk
// bookkeeping — four to six times per app. The store generates each stream
// once per process and hands out lightweight replay cursors over a shared
// read-only slice, which is both cheaper per instruction than generation
// and free after the first request.
//
// Store is safe for concurrent use: the first Get for a key generates under
// a per-entry sync.Once while other keys proceed independently, and replay
// generators never mutate the shared slice.
type Store struct {
	mu      sync.Mutex
	entries map[storeKey]*storeEntry
}

type storeKey struct {
	name  string
	scale float64
}

type storeEntry struct {
	once   sync.Once
	stream *Stream
	err    error
}

// NewStore returns an empty trace store.
func NewStore() *Store {
	return &Store{entries: make(map[storeKey]*storeEntry)}
}

// shared is the process-wide store used by the public Run API and the
// experiment harness; all configurations of one sweep replay its streams.
var shared = NewStore()

// Shared returns the process-wide trace store.
func Shared() *Store { return shared }

// Stream returns the shared immutable trace arena of the named app at the
// given scale, generating (and caching) it on first use. Every caller of
// the same (app, scale) pair receives the identical *Stream — one arena per
// pair, shared across all sweep workers with no per-cell copying. After the
// first call for a key this allocates nothing.
func (s *Store) Stream(name string, scale float64) (*Stream, error) {
	if scale <= 0 {
		scale = 1 // mirror New's normalization so keys do not fragment
	}
	key := storeKey{name: name, scale: scale}
	s.mu.Lock()
	if s.entries == nil { // the zero Store is ready to use
		s.entries = make(map[storeKey]*storeEntry)
	}
	e, ok := s.entries[key]
	if !ok {
		e = &storeEntry{}
		s.entries[key] = e
	}
	s.mu.Unlock()

	e.once.Do(func() {
		g, err := New(name, scale)
		if err != nil {
			e.err = err
			return
		}
		acc := make([]Access, 0, g.Len())
		for {
			a, ok := g.Next()
			if !ok {
				break
			}
			acc = append(acc, a)
		}
		e.stream = NewStream(name, acc)
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.stream, nil
}

// Get returns a fresh replay cursor over the memoized access stream of the
// named app at the given scale, generating (and caching) the stream on
// first use. The replayed sequence is exactly what New(name, scale) would
// produce; each returned Generator has its own position and may be consumed
// concurrently with others (they share one Stream arena).
func (s *Store) Get(name string, scale float64) (Generator, error) {
	st, err := s.Stream(name, scale)
	if err != nil {
		return nil, err
	}
	return st.Cursor(), nil
}

// MustGet is Get for app names known to be valid.
func (s *Store) MustGet(name string, scale float64) Generator {
	g, err := s.Get(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}

// Len reports how many distinct (app, scale) streams are memoized.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Evict drops every memoized stream, releasing their memory. Long-lived
// processes sweeping many distinct scales can call it between sweeps; a
// full-length 20-app suite holds on the order of a hundred megabytes.
func (s *Store) Evict() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[storeKey]*storeEntry)
}
