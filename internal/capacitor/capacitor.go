// Package capacitor models the tiny energy-storage capacitor of a
// batteryless energy harvesting system together with the voltage monitor
// thresholds that drive the intermittent-execution life cycle.
//
// The stored energy E and terminal voltage V are related by E = ½CV².
// The system operates between four voltages:
//
//	Vmax    — the harvester regulator clamps charging here.
//	Von     — reboot threshold: a dead system restarts once V rises to Von.
//	Vbackup — JIT-checkpoint trigger: crossing below it starts the backup
//	          of dirty cache blocks and registers; the system then dies.
//	Voff    — brown-out voltage: below it no useful work is possible. The
//	          band Vbackup→Voff is the guard energy that finishes a backup.
package capacitor

import (
	"fmt"
	"math"
)

// Config holds the capacitor and voltage-monitor parameters.
type Config struct {
	// CapacitanceFarads is the storage capacitance (paper default 0.47 µF).
	CapacitanceFarads float64
	// Vmax, Von, Vbackup, Voff as described in the package comment.
	Vmax, Von, Vbackup, Voff float64
}

// DefaultConfig returns the paper's default configuration: a 0.47 µF
// capacitor with a 3.5 V clamp, 3.4 V reboot, 3.18 V backup trigger, and
// 2.9 V brown-out. The IPEX threshold examples in the paper (3.3 V / 3.25 V)
// sit inside the (Voff, Von) operating band of this configuration.
func DefaultConfig() Config {
	return Config{
		CapacitanceFarads: 0.47e-6,
		Vmax:              3.5,
		Von:               3.4,
		Vbackup:           3.18,
		Voff:              2.9,
	}
}

// Validate reports whether the configuration is physically meaningful.
func (c Config) Validate() error {
	// NaN fails every comparison, so "<= 0" alone would let NaN through and
	// poison the energy-cutoff bisection downstream; reject it explicitly.
	if math.IsNaN(c.CapacitanceFarads) || math.IsInf(c.CapacitanceFarads, 0) || c.CapacitanceFarads <= 0 {
		return fmt.Errorf("capacitor: capacitance must be positive and finite, got %g", c.CapacitanceFarads)
	}
	for _, v := range []float64{c.Vmax, c.Von, c.Vbackup, c.Voff} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("capacitor: voltages must be finite, got %.2f/%.2f/%.2f/%.2f",
				c.Vmax, c.Von, c.Vbackup, c.Voff)
		}
	}
	if !(c.Vmax > c.Von && c.Von > c.Vbackup && c.Vbackup > c.Voff && c.Voff > 0) {
		return fmt.Errorf("capacitor: need Vmax > Von > Vbackup > Voff > 0, got %.2f/%.2f/%.2f/%.2f",
			c.Vmax, c.Von, c.Vbackup, c.Voff)
	}
	return nil
}

// Capacitor is the mutable charge state. All energies are in nanojoules to
// match the rest of the simulator.
type Capacitor struct {
	cfg Config
	// energyNJ is the stored energy in nJ.
	energyNJ float64
	maxNJ    float64
	// backupCutNJ/onCutNJ are the exact energy-domain images of the
	// Vbackup/Von comparisons: the smallest stored energy whose Voltage()
	// is >= the threshold. The simulator's per-instruction voltage checks
	// reduce to one float compare instead of a square root.
	backupCutNJ float64
	onCutNJ     float64
}

// New returns a capacitor charged to Vmax.
func New(cfg Config) (*Capacitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Capacitor{cfg: cfg, maxNJ: energyNJAt(cfg, cfg.Vmax)}
	c.energyNJ = c.maxNJ
	c.backupCutNJ = energyCutoffNJ(cfg, cfg.Vbackup)
	c.onCutNJ = energyCutoffNJ(cfg, cfg.Von)
	return c, nil
}

// MustNew is New for configurations known to be valid (tests, defaults).
func MustNew(cfg Config) *Capacitor {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func energyNJAt(cfg Config, v float64) float64 {
	return 0.5 * cfg.CapacitanceFarads * v * v * 1e9
}

// voltageOfNJ replicates Voltage()'s exact floating-point sequence for an
// arbitrary stored energy. Every step (×2, ×1e-9, ÷C, sqrt) is a
// correctly-rounded monotone operation, so the composition is weakly
// monotone in e — the property energyCutoffNJ relies on.
func voltageOfNJ(cfg Config, e float64) float64 {
	if e <= 0 {
		return 0
	}
	return math.Sqrt(2 * e * 1e-9 / cfg.CapacitanceFarads)
}

// energyCutoffNJ returns the smallest float64 energy e (in nJ) such that
// voltageOfNJ(cfg, e) >= v. Because voltageOfNJ is weakly monotone, the set
// {e : Voltage(e) >= v} is upward closed and "Voltage() >= v" is exactly
// equivalent to "energyNJ >= cutoff" — bit-identical to comparing voltages,
// without the per-call square root. The boundary is found by bisecting the
// IEEE-754 bit representation (non-negative doubles order like their bits),
// which pins the exact ULP in at most 64 steps.
func energyCutoffNJ(cfg Config, v float64) float64 {
	if v <= 0 {
		// Voltage() is never negative, so the comparison always holds.
		return math.Inf(-1)
	}
	hi := energyNJAt(cfg, cfg.Vmax)
	for voltageOfNJ(cfg, hi) < v {
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.Inf(1) // v is unreachable at any stored energy
		}
	}
	lob, hib := uint64(0), math.Float64bits(hi)
	for lob < hib {
		mid := lob + (hib-lob)/2
		if voltageOfNJ(cfg, math.Float64frombits(mid)) >= v {
			hib = mid
		} else {
			lob = mid + 1
		}
	}
	return math.Float64frombits(lob)
}

// Config returns the configuration the capacitor was built with.
func (c *Capacitor) Config() Config { return c.cfg }

// Voltage returns the current terminal voltage in volts.
func (c *Capacitor) Voltage() float64 {
	if c.energyNJ <= 0 {
		return 0
	}
	return math.Sqrt(2 * c.energyNJ * 1e-9 / c.cfg.CapacitanceFarads)
}

// EnergyNJ returns the stored energy in nanojoules.
func (c *Capacitor) EnergyNJ() float64 { return c.energyNJ }

// Harvest adds nj nanojoules of harvested energy, clamped at the Vmax
// capacity. It returns the energy actually stored (the rest is shed by the
// regulator clamp).
func (c *Capacitor) Harvest(nj float64) float64 {
	if nj <= 0 {
		return 0
	}
	room := c.maxNJ - c.energyNJ
	if nj > room {
		nj = room
	}
	c.energyNJ += nj
	return nj
}

// Consume drains nj nanojoules of energy, flooring at zero charge.
func (c *Capacitor) Consume(nj float64) {
	if nj <= 0 {
		return
	}
	c.energyNJ -= nj
	if c.energyNJ < 0 {
		c.energyNJ = 0
	}
}

// CapacityNJ returns the maximum storable energy (the Vmax clamp) in nJ.
func (c *Capacitor) CapacityNJ() float64 { return c.maxNJ }

// BackupCutoffNJ returns the stored energy below which BelowBackup fires —
// the exact energy-domain image of the Vbackup comparison.
func (c *Capacitor) BackupCutoffNJ() float64 { return c.backupCutNJ }

// RestoreEnergyNJ overwrites the stored energy with a value previously
// derived from EnergyNJ() by replicating Harvest/Consume arithmetic outside
// the capacitor. The simulator's specialized hot loops keep the charge in a
// register (via EnergyNJ/CapacityNJ/BackupCutoffNJ) and write it back here
// at power-cycle boundaries; e must follow the same clamp-at-capacity,
// floor-at-zero algebra or the voltage model is undefined.
func (c *Capacitor) RestoreEnergyNJ(e float64) { c.energyNJ = e }

// SetVoltage forces the terminal voltage (clamped to [0, Vmax]); tests and
// the reboot path use it.
func (c *Capacitor) SetVoltage(v float64) {
	if v < 0 {
		v = 0
	}
	if v > c.cfg.Vmax {
		v = c.cfg.Vmax
	}
	c.energyNJ = energyNJAt(c.cfg, v)
}

// BelowBackup reports whether the voltage has fallen to the JIT-checkpoint
// trigger. The comparison runs in the energy domain (see energyCutoffNJ)
// and is exactly equivalent to Voltage() < Vbackup.
func (c *Capacitor) BelowBackup() bool { return c.energyNJ < c.backupCutNJ }

// AtOrAboveOn reports whether a dead system may reboot. Exactly equivalent
// to Voltage() >= Von, without the square root.
func (c *Capacitor) AtOrAboveOn() bool { return c.energyNJ >= c.onCutNJ }

// EnergyCutoffNJ returns the smallest stored energy (nJ) at which
// Voltage() >= v holds, so callers polling voltage thresholds every cycle
// (the IPEX controllers) can compare stored energy directly. The
// equivalence is exact: energyNJ >= cutoff iff Voltage() >= v.
func (c *Capacitor) EnergyCutoffNJ(v float64) float64 {
	return energyCutoffNJ(c.cfg, v)
}

// GuardEnergyNJ returns the energy available between the backup trigger and
// brown-out — the budget a JIT checkpoint must fit into.
func (c *Capacitor) GuardEnergyNJ() float64 {
	return energyNJAt(c.cfg, c.cfg.Vbackup) - energyNJAt(c.cfg, c.cfg.Voff)
}

// OperatingEnergyNJ returns the energy between reboot (Von) and the backup
// trigger (Vbackup) — the budget one power cycle can spend on execution
// when no energy arrives during the cycle.
func (c *Capacitor) OperatingEnergyNJ() float64 {
	return energyNJAt(c.cfg, c.cfg.Von) - energyNJAt(c.cfg, c.cfg.Vbackup)
}
