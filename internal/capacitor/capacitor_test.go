package capacitor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{CapacitanceFarads: 0, Vmax: 3.5, Von: 3.4, Vbackup: 3.1, Voff: 3.0},
		{CapacitanceFarads: -1e-6, Vmax: 3.5, Von: 3.4, Vbackup: 3.1, Voff: 3.0},
		{CapacitanceFarads: 1e-6, Vmax: 3.4, Von: 3.4, Vbackup: 3.1, Voff: 3.0}, // Vmax == Von
		{CapacitanceFarads: 1e-6, Vmax: 3.5, Von: 3.0, Vbackup: 3.1, Voff: 2.9}, // Von < Vbackup
		{CapacitanceFarads: 1e-6, Vmax: 3.5, Von: 3.4, Vbackup: 3.1, Voff: 3.2}, // Voff > Vbackup
		{CapacitanceFarads: 1e-6, Vmax: 3.5, Von: 3.4, Vbackup: 3.1, Voff: 0},   // Voff == 0
		// A degenerate monitor with Von == Voff would reboot straight into a
		// brown-out: the operating band must be strictly ordered.
		{CapacitanceFarads: 1e-6, Vmax: 3.5, Von: 3.0, Vbackup: 3.0, Voff: 3.0},
		{CapacitanceFarads: 1e-6, Vmax: 3.5, Von: math.NaN(), Vbackup: 3.1, Voff: 3.0},
		{CapacitanceFarads: 1e-6, Vmax: math.Inf(1), Von: 3.4, Vbackup: 3.1, Voff: 3.0},
		{CapacitanceFarads: math.NaN(), Vmax: 3.5, Von: 3.4, Vbackup: 3.1, Voff: 3.0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, cfg)
		}
	}
}

func TestNewStartsAtVmax(t *testing.T) {
	c := MustNew(DefaultConfig())
	if math.Abs(c.Voltage()-DefaultConfig().Vmax) > 1e-9 {
		t.Errorf("fresh capacitor voltage = %v, want Vmax", c.Voltage())
	}
}

func TestEnergyVoltageRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	f := func(raw float64) bool {
		v := math.Mod(math.Abs(raw), cfg.Vmax)
		c := MustNew(cfg)
		c.SetVoltage(v)
		return math.Abs(c.Voltage()-v) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHarvestClampsAtVmax(t *testing.T) {
	c := MustNew(DefaultConfig())
	stored := c.Harvest(1e9) // absurdly large
	if stored != 0 {
		t.Errorf("full capacitor stored %v nJ, want 0 (regulator clamp)", stored)
	}
	c.SetVoltage(3.2)
	before := c.EnergyNJ()
	stored = c.Harvest(1e9)
	if c.Voltage() > DefaultConfig().Vmax+1e-9 {
		t.Errorf("voltage exceeded Vmax: %v", c.Voltage())
	}
	if math.Abs(stored-(c.EnergyNJ()-before)) > 1e-9 {
		t.Errorf("Harvest return %v inconsistent with stored delta %v", stored, c.EnergyNJ()-before)
	}
}

func TestHarvestIgnoresNonPositive(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.SetVoltage(3.2)
	e := c.EnergyNJ()
	if c.Harvest(0) != 0 || c.Harvest(-5) != 0 || c.EnergyNJ() != e {
		t.Error("non-positive harvest changed state")
	}
}

func TestConsumeFloorsAtZero(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Consume(1e12)
	if c.EnergyNJ() != 0 || c.Voltage() != 0 {
		t.Errorf("over-consumption left energy=%v voltage=%v", c.EnergyNJ(), c.Voltage())
	}
	c.Consume(1) // consuming when empty must not go negative
	if c.EnergyNJ() < 0 {
		t.Error("energy went negative")
	}
}

func TestConsumeHarvestConservation(t *testing.T) {
	cfg := DefaultConfig()
	f := func(ops []float64) bool {
		c := MustNew(cfg)
		c.SetVoltage(3.2)
		e := c.EnergyNJ()
		for _, op := range ops {
			if math.IsNaN(op) || math.IsInf(op, 0) {
				continue
			}
			op = math.Mod(op, 100)
			if op >= 0 {
				e += c.Harvest(op)
			} else {
				take := -op
				if take > e {
					take = e
				}
				c.Consume(-op)
				e -= take
			}
		}
		return math.Abs(c.EnergyNJ()-e) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdPredicates(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNew(cfg)

	c.SetVoltage(cfg.Vbackup + 0.01)
	if c.BelowBackup() {
		t.Error("BelowBackup true above the trigger")
	}
	c.SetVoltage(cfg.Vbackup - 0.01)
	if !c.BelowBackup() {
		t.Error("BelowBackup false below the trigger")
	}

	c.SetVoltage(cfg.Von)
	if !c.AtOrAboveOn() {
		t.Error("AtOrAboveOn false at Von")
	}
	c.SetVoltage(cfg.Von - 0.01)
	if c.AtOrAboveOn() {
		t.Error("AtOrAboveOn true below Von")
	}
}

// TestEnergyCutoffExactlyMatchesVoltage walks the stored energy ULP by ULP
// across each threshold and checks that the energy-domain comparison agrees
// with the voltage-domain one at every single float64 — the bit-identical
// equivalence the hot loop relies on.
func TestEnergyCutoffExactlyMatchesVoltage(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNew(cfg)
	thresholds := []float64{cfg.Vbackup, cfg.Von, 3.30, 3.25, 3.17, cfg.Voff, cfg.Vmax}
	for _, v := range thresholds {
		cut := c.EnergyCutoffNJ(v)
		if voltageOfNJ(cfg, cut) < v {
			t.Errorf("v=%v: Voltage(cutoff=%v) = %v < v", v, cut, voltageOfNJ(cfg, cut))
		}
		// Probe a window of adjacent floats straddling the cutoff.
		e := cut
		for i := 0; i < 64; i++ {
			e = math.Nextafter(e, 0)
		}
		for i := 0; i < 128; i++ {
			byVoltage := voltageOfNJ(cfg, e) >= v
			byEnergy := e >= cut
			if byVoltage != byEnergy {
				t.Fatalf("v=%v e=%v (%x): voltage-domain %v, energy-domain %v",
					v, e, math.Float64bits(e), byVoltage, byEnergy)
			}
			e = math.Nextafter(e, math.Inf(1))
		}
	}
}

// TestCutoffPredicatesMatchSqrtForm cross-checks BelowBackup/AtOrAboveOn
// against their original sqrt formulations over random stored energies.
func TestCutoffPredicatesMatchSqrtForm(t *testing.T) {
	cfg := DefaultConfig()
	f := func(raw float64) bool {
		c := MustNew(cfg)
		e := math.Mod(math.Abs(raw), c.maxNJ*1.5)
		c.energyNJ = e
		return c.BelowBackup() == (c.Voltage() < cfg.Vbackup) &&
			c.AtOrAboveOn() == (c.Voltage() >= cfg.Von)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGuardCoversCheckpoint(t *testing.T) {
	// The backup guard band must cover a worst-case JIT checkpoint: 128
	// dirty blocks at the ReRAM write energy plus the register file.
	c := MustNew(DefaultConfig())
	worstCase := 128*0.160*16 + 2.0 // nJ
	if c.GuardEnergyNJ() < worstCase {
		t.Errorf("guard band %.1f nJ cannot cover worst-case checkpoint %.1f nJ",
			c.GuardEnergyNJ(), worstCase)
	}
}

func TestOperatingEnergyPositive(t *testing.T) {
	c := MustNew(DefaultConfig())
	if c.OperatingEnergyNJ() <= 0 {
		t.Errorf("operating energy = %v", c.OperatingEnergyNJ())
	}
	if c.GuardEnergyNJ() <= 0 {
		t.Errorf("guard energy = %v", c.GuardEnergyNJ())
	}
}

func TestSetVoltageClamps(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.SetVoltage(-1)
	if c.Voltage() != 0 {
		t.Errorf("negative voltage not clamped: %v", c.Voltage())
	}
	c.SetVoltage(99)
	if math.Abs(c.Voltage()-DefaultConfig().Vmax) > 1e-9 {
		t.Errorf("over-voltage not clamped: %v", c.Voltage())
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestCapacitorSizeScalesEnergy(t *testing.T) {
	// Fig. 22's physics: a 10x capacitor stores 10x the energy at the
	// same voltage, lengthening power cycles.
	small := DefaultConfig()
	big := small
	big.CapacitanceFarads = small.CapacitanceFarads * 10
	cs, cb := MustNew(small), MustNew(big)
	if math.Abs(cb.OperatingEnergyNJ()-10*cs.OperatingEnergyNJ()) > 1e-6 {
		t.Errorf("10x capacitance: operating energy %v vs %v",
			cb.OperatingEnergyNJ(), cs.OperatingEnergyNJ())
	}
}
