package ipex_test

import (
	"context"
	"encoding/json"
	"testing"

	"ipex"
)

// TestRunContextNilMatchesRun pins that RunContext(nil-like background ctx)
// is bit-identical to Run: the cancellation hook must be invisible when
// unused.
func TestRunContextNilMatchesRun(t *testing.T) {
	tr := ipex.GenerateTrace(ipex.RFHome, 0, 1)
	cfg := ipex.DefaultConfig()
	base, err := ipex.Run("fft", 0.1, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, ctx := range map[string]context.Context{
		"nil":        nil,
		"background": context.Background(),
	} {
		got, err := ipex.RunContext(ctx, "fft", 0.1, tr, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, _ := json.Marshal(base)
		b, _ := json.Marshal(got)
		if string(a) != string(b) {
			t.Fatalf("%s ctx: RunContext differs from Run:\n%s\n%s", name, a, b)
		}
	}
}

// TestRunContextCancelStopsAtPowerCycle pins the cancellation contract: a
// cancelled run stops at the next power-cycle boundary with Completed=false
// and a nil error — the same soft contract as budget truncation — and makes
// strictly less progress than the full run.
func TestRunContextCancelStopsAtPowerCycle(t *testing.T) {
	tr := ipex.GenerateTrace(ipex.RFHome, 0, 1)
	cfg := ipex.DefaultConfig()
	full, err := ipex.Run("fft", 0.1, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Outages == 0 {
		t.Fatal("test premise broken: RFHome run finished without an outage")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ipex.RunContext(ctx, "fft", 0.1, tr, cfg)
	if err != nil {
		t.Fatalf("cancelled run returned an error: %v", err)
	}
	if res.Completed {
		t.Fatal("cancelled run reported Completed=true")
	}
	if res.Insts >= full.Insts {
		t.Fatalf("cancelled run made full progress: %d insts vs %d", res.Insts, full.Insts)
	}
	if res.Outages != 1 {
		t.Fatalf("pre-cancelled run stopped after %d outages, want exactly 1 (the first power-cycle boundary)", res.Outages)
	}
}

// TestRunWorkloadContext covers the workload-generator variant of the same
// contract.
func TestRunWorkloadContext(t *testing.T) {
	tr := ipex.GenerateTrace(ipex.RFHome, 0, 1)
	cfg := ipex.DefaultConfig()
	wl, err := ipex.NewWorkload("gsme", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ipex.RunWorkloadContext(context.Background(), wl, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("uncancelled RunWorkloadContext did not complete")
	}
}
