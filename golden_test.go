package ipex

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/workload"
)

// The golden determinism test pins the simulator's observable behaviour:
// every optimization of the hot loop must reproduce the seed simulator's
// Result fields bit-for-bit (cycles, energy breakdown, outages, prefetch
// stats — everything in nvp.Result) for all 20 apps on the RFHome trace,
// across three configurations that exercise the no-prefetch, conventional
// prefetch, and IPEX code paths.
//
// testdata/golden_rfhome.json was generated from the unoptimized seed
// simulator. Regenerate it with `go test -run TestGoldenDeterminism -update`
// ONLY for an intentional behaviour change, never to paper over an
// optimization that drifted.
var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from current behaviour")

// goldenScale keeps the 20-app × 3-config sweep around a second while still
// running every app through multiple power cycles.
const goldenScale = 0.25

const goldenPath = "testdata/golden_rfhome.json"

// goldenRun is one (app, config) record. Result round-trips through JSON
// exactly: Go marshals float64 with the shortest representation that parses
// back to the identical bits, so DeepEqual after decode is a bit-identical
// comparison.
type goldenRun struct {
	App    string
	Config string
	Result nvp.Result
}

func goldenConfigs() []struct {
	name string
	cfg  nvp.Config
} {
	return []struct {
		name string
		cfg  nvp.Config
	}{
		{"default", nvp.DefaultConfig()},
		{"ipex-both", nvp.DefaultConfig().WithIPEX()},
		{"no-prefetch", nvp.DefaultConfig().WithoutPrefetch()},
	}
}

func computeGolden(t *testing.T) []goldenRun {
	t.Helper()
	trace := power.Generate(power.RFHome, power.DefaultTraceSamples, 1)
	var runs []goldenRun
	for _, app := range workload.Names() {
		for _, c := range goldenConfigs() {
			wl, err := workload.New(app, goldenScale)
			if err != nil {
				t.Fatalf("workload %s: %v", app, err)
			}
			r, err := nvp.Run(wl, trace, c.cfg)
			if err != nil {
				t.Fatalf("run %s/%s: %v", app, c.name, err)
			}
			runs = append(runs, goldenRun{App: app, Config: c.name, Result: r})
		}
	}
	return runs
}

func TestGoldenDeterminism(t *testing.T) {
	got := computeGolden(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden runs to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (generate with -update): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("decoding %s: %v", goldenPath, err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden run count changed: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].App != want[i].App || got[i].Config != want[i].Config {
			t.Fatalf("golden run order changed at %d: got %s/%s, want %s/%s",
				i, got[i].App, got[i].Config, want[i].App, want[i].Config)
		}
		if !reflect.DeepEqual(got[i].Result, want[i].Result) {
			t.Errorf("%s/%s: Result drifted from seed behaviour\ngot:  %s\nwant: %s",
				got[i].App, got[i].Config, mustJSON(got[i].Result), mustJSON(want[i].Result))
		}
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return err.Error()
	}
	return string(b)
}
